package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFailNthRead(t *testing.T) {
	d := NewDisk(128)
	id := d.Alloc()
	want := bytes.Repeat([]byte{0xAB}, 128)
	if err := d.Write(id, want); err != nil {
		t.Fatal(err)
	}
	d.SetFault(FailNth(1, MatchOp(FaultRead)))
	dst := make([]byte, 128)
	if err := d.Read(id, dst); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("first read: want ErrInjectedFault, got %v", err)
	}
	// The hook fires at most once: the retry must succeed.
	if err := d.Read(id, dst); err != nil {
		t.Fatalf("second read: %v", err)
	}
	if !bytes.Equal(dst, want) {
		t.Error("page contents corrupted by failed read")
	}
}

func TestFailNthWriteLeavesPageUnchanged(t *testing.T) {
	d := NewDisk(128)
	id := d.Alloc()
	orig := bytes.Repeat([]byte{0x01}, 128)
	if err := d.Write(id, orig); err != nil {
		t.Fatal(err)
	}
	d.SetFault(FailNth(1, MatchOp(FaultWrite)))
	if err := d.Write(id, bytes.Repeat([]byte{0x02}, 128)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want ErrInjectedFault, got %v", err)
	}
	d.SetFault(nil)
	dst := make([]byte, 128)
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, orig) {
		t.Error("failed write must not alter the stored page")
	}
}

func TestFaultMatchCategory(t *testing.T) {
	d := NewDisk(128)
	dataID := d.Alloc()
	indexID := d.AllocCat(CatIndex)
	buf := make([]byte, 128)
	if err := d.Write(dataID, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(indexID, buf); err != nil {
		t.Fatal(err)
	}
	d.SetFault(FailNth(1, MatchCat(CatIndex)))
	if err := d.Read(dataID, buf); err != nil {
		t.Fatalf("data read should pass the index-only fault: %v", err)
	}
	if err := d.Read(indexID, buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("index read: want ErrInjectedFault, got %v", err)
	}
}

func TestFaultSeqCountsAcrossOps(t *testing.T) {
	d := NewDisk(128)
	id := d.Alloc()
	var seen []int64
	d.SetFault(func(fi FaultInfo) error {
		seen = append(seen, fi.Seq)
		return nil
	})
	buf := make([]byte, 128)
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("Seq should be 1,2 across write+read, got %v", seen)
	}
	// Re-arming resets the sequence.
	seen = nil
	d.SetFault(func(fi FaultInfo) error {
		seen = append(seen, fi.Seq)
		return nil
	})
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("Seq should restart at 1 after SetFault, got %v", seen)
	}
}

// Reading an unallocated page must fail immediately, without paying the
// simulated read latency (the bug fixed in this change slept first and
// only then discovered the page did not exist).
func TestReadUnallocatedSkipsLatency(t *testing.T) {
	d := NewDisk(128)
	d.ReadLatency = 300 * time.Millisecond
	start := time.Now()
	err := d.Read(PageID(999), make([]byte, 128))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if elapsed >= d.ReadLatency {
		t.Errorf("unallocated read paid the %v latency (took %v)", d.ReadLatency, elapsed)
	}
}

func TestFetchFaultFiresOnCacheHit(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*64)
	id, _, err := pool.NewPage(CatData)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, true)
	if _, err := pool.Fetch(id, CatData); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, false)
	// The page is resident, so a disk-level fault could never reach it;
	// the pool-level hook must still fire.
	pool.SetFetchFault(FailNthFetch(1, CatData))
	if _, err := pool.Fetch(id, CatData); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("cached fetch: want ErrInjectedFault, got %v", err)
	}
	if _, err := pool.Fetch(id, CatData); err != nil {
		t.Fatalf("hook must fire at most once: %v", err)
	}
	pool.Unpin(id, false)
}

func TestFetchFaultFiresOnNewPage(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*64)
	pool.SetFetchFault(func(id PageID, cat Category) error {
		if id == InvalidPageID {
			return ErrInjectedFault
		}
		return nil
	})
	if _, _, err := pool.NewPage(CatData); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("NewPage: want ErrInjectedFault, got %v", err)
	}
	if d.NumPages() != 0 {
		t.Error("failed NewPage must not allocate a disk page")
	}
	pool.SetFetchFault(nil)
	if _, _, err := pool.NewPage(CatData); err != nil {
		t.Fatalf("NewPage after clearing hook: %v", err)
	}
}

func TestSlottedInsertAt(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	a := []byte("alpha-record")
	b := []byte("beta-record")
	sa, err := p.Insert(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(b); err != nil {
		t.Fatal(err)
	}
	// InsertAt refuses live slots and out-of-range slots.
	if err := p.InsertAt(sa, a); err == nil {
		t.Error("InsertAt into a live slot should fail")
	}
	if err := p.InsertAt(99, a); err == nil {
		t.Error("InsertAt out of range should fail")
	}
	if err := p.Delete(sa); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(sa, a); err != nil {
		t.Fatalf("InsertAt into tombstone: %v", err)
	}
	got, err := p.Get(sa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Errorf("restored record = %q, want %q", got, a)
	}
}

// InsertAt must compact when contiguous free space ran out but dead
// bytes remain — the exact situation an undo hits after later inserts
// churned the page.
func TestSlottedInsertAtCompacts(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	rec := bytes.Repeat([]byte{'x'}, 30)
	s0, err := p.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(rec); err != nil {
		t.Fatal(err)
	}
	// Exhaust the contiguous free space, then tombstone s0: restoring it
	// can only succeed by reclaiming its dead bytes.
	filler := bytes.Repeat([]byte{'y'}, p.FreeSpace()-4)
	if _, err := p.Insert(filler); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(s0, rec); err != nil {
		t.Fatalf("InsertAt should compact and fit: %v", err)
	}
	got, err := p.Get(s0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Error("restored record corrupted after compaction")
	}
}

// Shrinking a record in place and then restoring the original length
// must succeed on the same page: Update's fit check counts the record's
// own bytes as reclaimable, so an undo can always put back what was
// there before.
func TestSlottedUpdateRestoreAfterShrink(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	orig := bytes.Repeat([]byte{'o'}, 100)
	s, err := p.Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(s, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := p.Update(s, orig); err != nil {
		t.Fatalf("restoring the original record must fit in place: %v", err)
	}
	got, err := p.Get(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Error("restored record corrupted")
	}
}

func TestHeapReinsert(t *testing.T) {
	pool := NewBufferPool(NewDisk(256), 256*64)
	h := NewHeapFile(pool, InsertBestFit)
	var rids []RID
	for i := 0; i < 3; i++ {
		rid, err := h.Insert([]byte{byte('a' + i), byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	snap, err := h.Get(rids[1])
	if err != nil {
		t.Fatal(err)
	}
	snap = append([]byte(nil), snap...)
	if err := h.Reinsert(rids[1], snap); err == nil {
		t.Error("Reinsert over a live slot should fail")
	}
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if err := h.Reinsert(rids[1], snap); err != nil {
		t.Fatalf("Reinsert: %v", err)
	}
	got, err := h.Get(rids[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, snap) {
		t.Errorf("Reinsert returned %q, want %q", got, snap)
	}
	if h.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", h.NumRows())
	}
}

// A relocation whose destination insert fails must leave the row at its
// original RID with its original bytes.
func TestHeapUpdateRelocationFaultKeepsOldRow(t *testing.T) {
	pool := NewBufferPool(NewDisk(128), 128*64)
	h := NewHeapFile(pool, InsertBestFit)
	orig := bytes.Repeat([]byte{'r'}, 60)
	rid, err := h.Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	// A second record fills the page so growing the first cannot happen
	// in place; the relocation needs a fresh page — fail that allocation.
	if _, err := h.Insert(bytes.Repeat([]byte{'s'}, 50)); err != nil {
		t.Fatal(err)
	}
	pool.SetFetchFault(func(id PageID, cat Category) error {
		if id == InvalidPageID {
			return ErrInjectedFault
		}
		return nil
	})
	big := bytes.Repeat([]byte{'R'}, 70)
	if _, err := h.Update(rid, big); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("relocating update: want ErrInjectedFault, got %v", err)
	}
	pool.SetFetchFault(nil)
	got, err := h.Get(rid)
	if err != nil {
		t.Fatalf("row lost after failed relocation: %v", err)
	}
	if !bytes.Equal(got, orig) {
		t.Error("row bytes changed after failed relocation")
	}
	if h.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", h.NumRows())
	}
}
