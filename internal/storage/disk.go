package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Disk is the backing page store. The paper's testbed kept data on an
// NFS appliance; here pages live in memory and a configurable per-read
// latency stands in for the I/O cost of a buffer-pool miss, so the
// §5 experiment's sensitivity to hit ratio is preserved.
type Disk struct {
	mu       sync.Mutex
	pages    map[PageID][]byte
	cats     map[PageID]Category
	next     uint64
	pageSize int

	// ReadLatency is added to every physical page read. Zero (the
	// default) makes unit tests fast; the experiment harnesses set it
	// to tens of microseconds.
	ReadLatency time.Duration

	// fault, when set, is consulted before every physical read and
	// write; a non-nil return fails the operation before any state
	// changes. faultSeq numbers the operations seen by the hook.
	fault    FaultFn
	faultSeq atomic.Int64

	physReads  atomic.Int64
	physWrites atomic.Int64
}

// NewDisk creates an empty page store with the given page size
// (DefaultPageSize if zero).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{
		pages:    make(map[PageID][]byte),
		cats:     make(map[PageID]Category),
		pageSize: pageSize,
	}
}

// PageSize returns the size in bytes of every page on this disk.
func (d *Disk) PageSize() int { return d.pageSize }

// SetFault installs (or, with nil, removes) a fault-injection hook
// consulted before every physical read and write. The operation
// sequence counter restarts at 1 on every install.
func (d *Disk) SetFault(fn FaultFn) {
	d.mu.Lock()
	d.fault = fn
	d.faultSeq.Store(0)
	d.mu.Unlock()
}

// checkFault runs the installed hook, if any, for an imminent
// operation. It returns the hook's verdict.
func (d *Disk) checkFault(op FaultOp, id PageID) error {
	d.mu.Lock()
	fn := d.fault
	cat := d.cats[id]
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(FaultInfo{Op: op, ID: id, Cat: cat, Seq: d.faultSeq.Add(1)})
}

// Alloc reserves a new zeroed page and returns its ID. The page is
// tagged CatData; use AllocCat to tag index pages.
func (d *Disk) Alloc() PageID { return d.AllocCat(CatData) }

// AllocCat reserves a new zeroed page tagged with cat, so fault
// injection and diagnostics can target pages by category.
func (d *Disk) AllocCat(cat Category) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.next++
	id := PageID(d.next)
	d.pages[id] = make([]byte, d.pageSize)
	d.cats[id] = cat
	return id
}

// Read copies the page contents into dst, simulating I/O latency.
// Reads of unallocated pages fail immediately, before any simulated
// latency is paid: no I/O happened, so no I/O cost applies.
func (d *Disk) Read(id PageID, dst []byte) error {
	d.mu.Lock()
	_, ok := d.pages[id]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if err := d.checkFault(FaultRead, id); err != nil {
		return err
	}
	if d.ReadLatency > 0 {
		time.Sleep(d.ReadLatency)
	}
	d.mu.Lock()
	src, ok := d.pages[id]
	if ok {
		copy(dst, src)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	d.physReads.Add(1)
	return nil
}

// Write copies src to the page.
func (d *Disk) Write(id PageID, src []byte) error {
	if err := d.checkFault(FaultWrite, id); err != nil {
		return err
	}
	d.mu.Lock()
	dst, ok := d.pages[id]
	if ok {
		copy(dst, src)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	d.physWrites.Add(1)
	return nil
}

// Free releases the page.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	delete(d.pages, id)
	delete(d.cats, id)
	d.mu.Unlock()
}

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// PhysReads returns the cumulative physical read count.
func (d *Disk) PhysReads() int64 { return d.physReads.Load() }

// PhysWrites returns the cumulative physical write count.
func (d *Disk) PhysWrites() int64 { return d.physWrites.Load() }

// ResetCounters zeroes the physical I/O counters.
func (d *Disk) ResetCounters() {
	d.physReads.Store(0)
	d.physWrites.Store(0)
}
