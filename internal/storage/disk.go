package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPageCorrupt is returned by Read when a page's contents do not
// match its stored checksum — a torn or bit-rotted write. Tests inject
// it with CorruptPage; recovery treats it as unrecoverable media error.
var ErrPageCorrupt = errors.New("storage: page checksum mismatch")

// ErrDiskCrashed is returned by every disk operation after SetCrashed,
// modeling a machine that has lost power: no further I/O completes.
var ErrDiskCrashed = errors.New("storage: disk crashed")

// castagnoli is the CRC-32C polynomial table used for page checksums
// (the same polynomial iSCSI and ext4 use; it has hardware support on
// real silicon, which is why production engines pick it).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageMeta is the durable per-page header the disk keeps out-of-band:
// the LSN of the last log record reflected in the page (NoLSN if the
// page predates the WAL) and the CRC-32C of its contents. Keeping it
// beside the page rather than inside it leaves the slotted layout — and
// every offset computed from it — untouched.
type pageMeta struct {
	lsn LSN
	sum uint32
}

// Disk is the backing page store. The paper's testbed kept data on an
// NFS appliance; here pages live in memory and a configurable per-read
// latency stands in for the I/O cost of a buffer-pool miss, so the
// §5 experiment's sensitivity to hit ratio is preserved.
type Disk struct {
	mu       sync.Mutex
	pages    map[PageID][]byte
	cats     map[PageID]Category
	meta     map[PageID]pageMeta
	next     uint64
	pageSize int
	crashed  bool

	// ReadLatency is added to every physical page read. Zero (the
	// default) makes unit tests fast; the experiment harnesses set it
	// to tens of microseconds.
	ReadLatency time.Duration

	// fault, when set, is consulted before every physical read and
	// write; a non-nil return fails the operation before any state
	// changes. faultSeq numbers the operations seen by the hook.
	fault    FaultFn
	faultSeq atomic.Int64

	physReads  atomic.Int64
	physWrites atomic.Int64
}

// NewDisk creates an empty page store with the given page size
// (DefaultPageSize if zero).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{
		pages:    make(map[PageID][]byte),
		cats:     make(map[PageID]Category),
		meta:     make(map[PageID]pageMeta),
		pageSize: pageSize,
	}
}

// PageSize returns the size in bytes of every page on this disk.
func (d *Disk) PageSize() int { return d.pageSize }

// SetFault installs (or, with nil, removes) a fault-injection hook
// consulted before every physical read and write. The operation
// sequence counter restarts at 1 on every install.
func (d *Disk) SetFault(fn FaultFn) {
	d.mu.Lock()
	d.fault = fn
	d.faultSeq.Store(0)
	d.mu.Unlock()
}

// checkFault runs the installed hook, if any, for an imminent
// operation. It returns the hook's verdict.
func (d *Disk) checkFault(op FaultOp, id PageID) error {
	d.mu.Lock()
	fn := d.fault
	cat := d.cats[id]
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(FaultInfo{Op: op, ID: id, Cat: cat, Seq: d.faultSeq.Add(1)})
}

// Alloc reserves a new zeroed page and returns its ID. The page is
// tagged CatData; use AllocCat to tag index pages.
func (d *Disk) Alloc() PageID { return d.AllocCat(CatData) }

// AllocCat reserves a new zeroed page tagged with cat, so fault
// injection and diagnostics can target pages by category.
func (d *Disk) AllocCat(cat Category) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return InvalidPageID
	}
	d.next++
	id := PageID(d.next)
	page := make([]byte, d.pageSize)
	d.pages[id] = page
	d.cats[id] = cat
	d.meta[id] = pageMeta{sum: crc32.Checksum(page, castagnoli)}
	return id
}

// SetCrashed marks the disk as crashed (true) or repaired (false).
// While crashed every operation fails with ErrDiskCrashed and Alloc
// returns InvalidPageID; the stored pages survive for recovery.
func (d *Disk) SetCrashed(crashed bool) {
	d.mu.Lock()
	d.crashed = crashed
	d.mu.Unlock()
}

// Read copies the page contents into dst, simulating I/O latency.
// Reads of unallocated pages fail immediately, before any simulated
// latency is paid: no I/O happened, so no I/O cost applies.
func (d *Disk) Read(id PageID, dst []byte) error {
	d.mu.Lock()
	crashed := d.crashed
	_, ok := d.pages[id]
	d.mu.Unlock()
	if crashed {
		return ErrDiskCrashed
	}
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if err := d.checkFault(FaultRead, id); err != nil {
		return err
	}
	if d.ReadLatency > 0 {
		time.Sleep(d.ReadLatency)
	}
	d.mu.Lock()
	src, ok := d.pages[id]
	var badSum bool
	if ok {
		copy(dst, src)
		badSum = crc32.Checksum(src, castagnoli) != d.meta[id].sum
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if badSum {
		return fmt.Errorf("storage: page %d: %w", id, ErrPageCorrupt)
	}
	d.physReads.Add(1)
	return nil
}

// Write copies src to the page, stamping a fresh checksum and keeping
// the page's recorded LSN. Use WriteLSN to advance the LSN too.
func (d *Disk) Write(id PageID, src []byte) error {
	return d.write(id, src, false, NoLSN)
}

// WriteLSN copies src to the page and records lsn as the page's LSN —
// the write-back path of a WAL-governed buffer pool, which by the
// WAL-before-data rule may only run once the log is durable past lsn.
func (d *Disk) WriteLSN(id PageID, src []byte, lsn LSN) error {
	return d.write(id, src, true, lsn)
}

func (d *Disk) write(id PageID, src []byte, setLSN bool, lsn LSN) error {
	d.mu.Lock()
	crashed := d.crashed
	d.mu.Unlock()
	if crashed {
		return ErrDiskCrashed
	}
	if err := d.checkFault(FaultWrite, id); err != nil {
		return err
	}
	d.mu.Lock()
	dst, ok := d.pages[id]
	if ok {
		copy(dst, src)
		m := d.meta[id]
		m.sum = crc32.Checksum(dst, castagnoli)
		if setLSN {
			m.lsn = lsn
		}
		d.meta[id] = m
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	d.physWrites.Add(1)
	return nil
}

// PageLSN returns the LSN recorded with the page's last WriteLSN, or
// NoLSN for pages never written under WAL (or unallocated).
func (d *Disk) PageLSN(id PageID) LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meta[id].lsn
}

// CorruptPage flips bytes of the stored page without touching its
// checksum, so the next Read fails with ErrPageCorrupt. It reports
// whether the page existed.
func (d *Disk) CorruptPage(id PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	page, ok := d.pages[id]
	if !ok {
		return false
	}
	page[len(page)/2] ^= 0xFF
	return true
}

// Free releases the page.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	delete(d.pages, id)
	delete(d.cats, id)
	delete(d.meta, id)
	d.mu.Unlock()
}

// Allocated reports whether the page currently exists.
func (d *Disk) Allocated(id PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.pages[id]
	return ok
}

// PageIDs returns the IDs of all allocated pages (any order).
func (d *Disk) PageIDs() []PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PageID, 0, len(d.pages))
	for id := range d.pages {
		out = append(out, id)
	}
	return out
}

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// PhysReads returns the cumulative physical read count.
func (d *Disk) PhysReads() int64 { return d.physReads.Load() }

// PhysWrites returns the cumulative physical write count.
func (d *Disk) PhysWrites() int64 { return d.physWrites.Load() }

// ResetCounters zeroes the physical I/O counters.
func (d *Disk) ResetCounters() {
	d.physReads.Store(0)
	d.physWrites.Store(0)
}
