package storage

import "fmt"

// Heap-page redo helpers for crash recovery. The pageLSN skip guarantees
// each helper sees the page in exactly the state the original mutation
// saw, so replay re-runs the same slotted-page operation and must get
// the same slot back.

// ReplayHeapInit reformats page as an empty slotted page (redo of
// KHeapNewPage's physical half).
func ReplayHeapInit(pool *BufferPool, page PageID) error {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return err
	}
	InitSlotted(buf)
	pool.Unpin(page, true)
	return nil
}

// ReplayHeapInsert redoes an insert that originally landed in slot. A
// lower slot reoccupies the tombstone the original insert reused; a
// slot equal to the current slot count forces the append path — the
// original insert may have skipped free tombstones that were pinned by
// version chains at run time, a fact the log does not carry, so replay
// must not re-run tombstone-reuse placement.
func ReplayHeapInsert(pool *BufferPool, page PageID, slot uint16, rec []byte) error {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return err
	}
	sp := Slotted(buf)
	if int(slot) < sp.NumSlots() {
		err = sp.InsertAt(slot, rec)
	} else {
		var got uint16
		got, err = sp.InsertAvoiding(rec, func(uint16) bool { return true })
		if err == nil && got != slot {
			err = fmt.Errorf("storage: replay insert landed in slot %d, logged %d (page %d)", got, slot, page)
		}
	}
	pool.Unpin(page, err == nil)
	return err
}

// ReplayHeapInsertAt redoes a restore into a tombstoned slot (the
// relocation-undo path).
func ReplayHeapInsertAt(pool *BufferPool, page PageID, slot uint16, rec []byte) error {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return err
	}
	err = Slotted(buf).InsertAt(slot, rec)
	pool.Unpin(page, err == nil)
	return err
}

// ReplayHeapDelete redoes a slot tombstoning.
func ReplayHeapDelete(pool *BufferPool, page PageID, slot uint16) error {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return err
	}
	err = Slotted(buf).Delete(slot)
	pool.Unpin(page, err == nil)
	return err
}

// ReplayHeapUpdate redoes an in-place record replacement (relocating
// updates log delete + insert pairs instead).
func ReplayHeapUpdate(pool *BufferPool, page PageID, slot uint16, rec []byte) error {
	buf, err := pool.Fetch(page, CatData)
	if err != nil {
		return err
	}
	err = Slotted(buf).Update(slot, rec)
	pool.Unpin(page, err == nil)
	return err
}
