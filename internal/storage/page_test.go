package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSlottedInsertGet(t *testing.T) {
	buf := make([]byte, 256)
	p := InitSlotted(buf)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil || !bytes.Equal(got, recs[i]) {
			t.Errorf("Get(%d) = %q, %v; want %q", s, got, err, recs[i])
		}
	}
	if p.NumSlots() != 3 {
		t.Errorf("NumSlots = %d", p.NumSlots())
	}
}

func TestSlottedFull(t *testing.T) {
	buf := make([]byte, 64)
	p := InitSlotted(buf)
	big := make([]byte, 100)
	if _, err := p.Insert(big); !errors.Is(err, ErrPageFull) {
		t.Errorf("want ErrPageFull, got %v", err)
	}
	small := make([]byte, 10)
	for {
		if _, err := p.Insert(small); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
}

func TestSlottedDeleteReuse(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s0); err == nil {
		t.Error("Get of deleted slot should fail")
	}
	if err := p.Delete(s0); err == nil {
		t.Error("double delete should fail")
	}
	// Reinsert should reuse the tombstoned slot.
	s2, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Errorf("expected slot reuse: got %d want %d", s2, s0)
	}
	if got, _ := p.Get(s1); !bytes.Equal(got, []byte("two")) {
		t.Error("surviving record corrupted")
	}
}

func TestSlottedUpdateInPlaceAndGrow(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, []byte("xy")) {
		t.Errorf("shrunken update: %q", got)
	}
	if err := p.Update(s, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, []byte("0123456789")) {
		t.Errorf("grown update: %q", got)
	}
}

func TestSlottedCompactReclaimsSpace(t *testing.T) {
	buf := make([]byte, 128)
	p := InitSlotted(buf)
	s0, _ := p.Insert(bytes.Repeat([]byte("a"), 40))
	s1, _ := p.Insert(bytes.Repeat([]byte("b"), 40))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	// Without compaction there is not room for another 40-byte record
	// plus the reused slot; the update path compacts internally, and an
	// insert that reuses the tombstone succeeds after manual Compact.
	p.Compact()
	s2, err := p.Insert(bytes.Repeat([]byte("c"), 40))
	if err != nil {
		t.Fatalf("insert after compact: %v", err)
	}
	if got, _ := p.Get(s1); !bytes.Equal(got, bytes.Repeat([]byte("b"), 40)) {
		t.Error("compaction corrupted survivor")
	}
	if got, _ := p.Get(s2); !bytes.Equal(got, bytes.Repeat([]byte("c"), 40)) {
		t.Error("post-compaction insert corrupted")
	}
}

func TestSlottedRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, 512)
		p := InitSlotted(buf)
		model := map[uint16][]byte{}
		for op := 0; op < 200; op++ {
			switch r.Intn(3) {
			case 0: // insert
				rec := make([]byte, 1+r.Intn(40))
				r.Read(rec)
				s, err := p.Insert(rec)
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					return false
				}
				model[s] = append([]byte(nil), rec...)
			case 1: // delete random live slot
				for s := range model {
					if p.Delete(s) != nil {
						return false
					}
					delete(model, s)
					break
				}
			case 2: // update random live slot
				for s := range model {
					rec := make([]byte, 1+r.Intn(40))
					r.Read(rec)
					err := p.Update(s, rec)
					if errors.Is(err, ErrPageFull) {
						break
					}
					if err != nil {
						return false
					}
					model[s] = append([]byte(nil), rec...)
					break
				}
			}
			// verify
			for s, want := range model {
				got, err := p.Get(s)
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		live := 0
		p.LiveRecords(func(slot uint16, rec []byte) bool {
			if !bytes.Equal(rec, model[slot]) {
				t.Errorf("LiveRecords mismatch at slot %d", slot)
			}
			live++
			return true
		})
		return live == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiskAllocReadWrite(t *testing.T) {
	d := NewDisk(128)
	id := d.Alloc()
	src := bytes.Repeat([]byte{7}, 128)
	if err := d.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 128)
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("read != write")
	}
	if d.PhysReads() != 1 || d.PhysWrites() != 1 {
		t.Errorf("counters: %d reads %d writes", d.PhysReads(), d.PhysWrites())
	}
	d.Free(id)
	if err := d.Read(id, dst); err == nil {
		t.Error("read of freed page should fail")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*8)
	id, buf, err := pool.NewPage(CatData)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 42
	pool.Unpin(id, true)

	// First fetch after NewPage is a hit (resident).
	got, err := pool.Fetch(id, CatData)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Error("lost write")
	}
	pool.Unpin(id, false)
	s := pool.Stats()
	if s.LogicalReads[CatData] != 1 || s.PhysicalReads[CatData] != 0 {
		t.Errorf("stats after hit: %+v", s)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	got, err = pool.Fetch(id, CatData)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Error("dirty page lost on DropAll")
	}
	pool.Unpin(id, false)
	s = pool.Stats()
	if s.PhysicalReads[CatData] != 1 {
		t.Errorf("expected one miss, stats %+v", s)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*8) // 8 frames
	var ids []PageID
	for i := 0; i < 20; i++ {
		id, buf, err := pool.NewPage(CatData)
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	// All pages must survive eviction via write-back.
	for i, id := range ids {
		buf, err := pool.Fetch(id, CatData)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if buf[0] != byte(i) {
			t.Errorf("page %d corrupted: %d", id, buf[0])
		}
		pool.Unpin(id, false)
	}
	if pool.Stats().Evictions == 0 {
		t.Error("expected evictions")
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 0) // clamps to 8 frames
	var pinned []PageID
	for i := 0; i < 8; i++ {
		id, _, err := pool.NewPage(CatData)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, id)
	}
	if _, _, err := pool.NewPage(CatData); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("want ErrPoolExhausted, got %v", err)
	}
	for _, id := range pinned {
		pool.Unpin(id, false)
	}
	if _, _, err := pool.NewPage(CatData); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

func TestBufferPoolShrinkGrow(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*64)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, _, _ := pool.NewPage(CatData)
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	if err := pool.SetCapacityBytes(128 * 8); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Resident; got > 8 {
		t.Errorf("resident %d after shrink to 8", got)
	}
	for _, id := range ids {
		buf, err := pool.Fetch(id, CatData)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
		_ = buf
	}
}

func TestHitRatioAccounting(t *testing.T) {
	var s PoolStats
	s.LogicalReads[CatIndex] = 100
	s.PhysicalReads[CatIndex] = 25
	if got := s.HitRatio(CatIndex); got != 0.75 {
		t.Errorf("HitRatio = %v", got)
	}
	if got := s.HitRatio(CatData); got != 1 {
		t.Errorf("HitRatio with no reads = %v", got)
	}
}

func newTestHeap(t *testing.T, mode InsertMode) *HeapFile {
	t.Helper()
	d := NewDisk(256)
	pool := NewBufferPool(d, 256*1024)
	return NewHeapFile(pool, mode)
}

func TestHeapInsertGetDelete(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.NumRows() != 100 {
		t.Errorf("NumRows = %d", h.NumRows())
	}
	for i, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil || string(rec) != fmt.Sprintf("record-%03d", i) {
			t.Errorf("Get(%v) = %q, %v", rid, rec, err)
		}
	}
	if err := h.Delete(rids[50]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rids[50]); err == nil {
		t.Error("Get of deleted record should fail")
	}
	if h.NumRows() != 99 {
		t.Errorf("NumRows after delete = %d", h.NumRows())
	}
}

func TestHeapScan(t *testing.T) {
	h := newTestHeap(t, InsertAppend)
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		s := fmt.Sprintf("row-%d", i)
		if _, err := h.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want[s] = true
	}
	got := map[string]bool{}
	err := h.Scan(func(rid RID, rec []byte) (bool, error) {
		got[string(rec)] = true
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("scan saw %d rows, want %d", len(got), len(want))
	}
	// Early stop.
	n := 0
	h.Scan(func(rid RID, rec []byte) (bool, error) {
		n++
		return n < 10, nil
	})
	if n != 10 {
		t.Errorf("early stop at %d", n)
	}
}

func TestHeapUpdateRelocates(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	// Fill a page nearly full.
	var rids []RID
	for i := 0; i < 5; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 40))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	big := bytes.Repeat([]byte{0xEE}, 200)
	newRID, err := h.Update(rids[0], big)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := h.Get(newRID)
	if err != nil || !bytes.Equal(rec, big) {
		t.Errorf("after relocation: %v", err)
	}
	if h.NumRows() != 5 {
		t.Errorf("NumRows after relocating update = %d", h.NumRows())
	}
}

func TestHeapInsertModes(t *testing.T) {
	// Best-fit refills holes; append grows the file.
	bf := newTestHeap(t, InsertBestFit)
	ap := newTestHeap(t, InsertAppend)
	rec := bytes.Repeat([]byte{1}, 40)
	var bfRIDs, apRIDs []RID
	for i := 0; i < 20; i++ {
		r1, _ := bf.Insert(rec)
		r2, _ := ap.Insert(rec)
		bfRIDs = append(bfRIDs, r1)
		apRIDs = append(apRIDs, r2)
	}
	for i := 0; i < 10; i++ {
		bf.Delete(bfRIDs[i])
		ap.Delete(apRIDs[i])
	}
	bfPages, apPages := bf.NumPages(), ap.NumPages()
	for i := 0; i < 10; i++ {
		bf.Insert(rec)
		ap.Insert(rec)
	}
	if bf.NumPages() != bfPages {
		t.Errorf("best-fit grew from %d to %d pages", bfPages, bf.NumPages())
	}
	if ap.NumPages() <= apPages {
		t.Errorf("append should grow beyond %d pages, at %d", apPages, ap.NumPages())
	}
}

func TestHeapOversizedRecord(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	if _, err := h.Insert(make([]byte, 1024)); err == nil {
		t.Error("oversized record should be rejected")
	}
}

func TestHeapDrop(t *testing.T) {
	d := NewDisk(256)
	pool := NewBufferPool(d, 256*64)
	h := NewHeapFile(pool, InsertBestFit)
	for i := 0; i < 50; i++ {
		h.Insert([]byte("some record data here"))
	}
	if d.NumPages() == 0 {
		t.Fatal("expected pages")
	}
	if err := h.Drop(); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != 0 {
		t.Errorf("drop left %d pages", d.NumPages())
	}
	if h.NumRows() != 0 {
		t.Error("rows after drop")
	}
}

func TestHeapScanner(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	want := map[string]RID{}
	for i := 0; i < 120; i++ {
		s := fmt.Sprintf("rec-%03d", i)
		rid, err := h.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		want[s] = rid
	}
	// Delete a few to exercise tombstone skipping.
	for i := 0; i < 120; i += 10 {
		s := fmt.Sprintf("rec-%03d", i)
		if err := h.Delete(want[s]); err != nil {
			t.Fatal(err)
		}
		delete(want, s)
	}
	sc := h.Scanner()
	seen := 0
	for {
		rid, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		wantRID, exists := want[string(rec)]
		if !exists {
			t.Fatalf("scanner returned deleted/unknown record %q", rec)
		}
		if rid != wantRID {
			t.Errorf("rid mismatch for %q", rec)
		}
		seen++
	}
	if seen != len(want) {
		t.Errorf("scanner saw %d records, want %d", seen, len(want))
	}
}

func TestBufferPoolFlushAllAndAccessors(t *testing.T) {
	d := NewDisk(0) // default page size
	if d.PageSize() != DefaultPageSize {
		t.Errorf("default page size: %d", d.PageSize())
	}
	pool := NewBufferPool(d, DefaultPageSize*16)
	if pool.PageSize() != DefaultPageSize || pool.Capacity() != 16 {
		t.Errorf("pool accessors: %d %d", pool.PageSize(), pool.Capacity())
	}
	id, buf, _ := pool.NewPage(CatData)
	buf[0] = 9
	pool.Unpin(id, true)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// After flush the disk copy holds the data even without eviction.
	dst := make([]byte, DefaultPageSize)
	if err := d.Read(id, dst); err != nil || dst[0] != 9 {
		t.Errorf("flush: %v %d", err, dst[0])
	}
	pool.ResetStats()
	s := pool.Stats()
	if s.TotalLogicalReads() != 0 || s.TotalPhysicalReads() != 0 {
		t.Errorf("reset stats: %+v", s)
	}
	d.ResetCounters()
	if d.PhysReads() != 0 {
		t.Error("disk counters not reset")
	}
}

func TestDropAllWithPinnedPageFails(t *testing.T) {
	d := NewDisk(128)
	pool := NewBufferPool(d, 128*16)
	id, _, _ := pool.NewPage(CatData)
	if err := pool.DropAll(); err == nil {
		t.Error("DropAll with a pinned page should fail")
	}
	pool.Unpin(id, false)
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FreePage(id); err != nil {
		t.Fatal(err)
	}
}

func TestRIDString(t *testing.T) {
	if got := (RID{Page: 3, Slot: 7}).String(); got != "(3,7)" {
		t.Errorf("RID.String = %q", got)
	}
}

func TestConcurrentFetchSamePage(t *testing.T) {
	// Regression for the I/O-latch race: concurrent fetches of a page
	// being loaded must wait for the loader, not observe a zeroed page.
	d := NewDisk(256)
	d.ReadLatency = 200 * time.Microsecond
	pool := NewBufferPool(d, 256*8)
	id, buf, _ := pool.NewPage(CatData)
	sp := InitSlotted(buf)
	if _, err := sp.Insert([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, true)
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := pool.Fetch(id, CatData)
			if err != nil {
				errs <- err
				return
			}
			rec, err := Slotted(got).Get(0)
			if err != nil || string(rec) != "payload" {
				errs <- fmt.Errorf("torn read: %q %v", rec, err)
			}
			pool.Unpin(id, false)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
