package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// fakeGate is a controllable WALGate for pool tests.
type fakeGate struct {
	mu      sync.Mutex
	durable LSN
	oldest  LSN
	syncs   int
}

func (g *fakeGate) DurableLSN() LSN {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.durable
}

func (g *fakeGate) SyncTo(lsn LSN) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.syncs++
	if lsn > g.durable {
		g.durable = lsn
	}
	return nil
}

func (g *fakeGate) OldestActiveLSN() LSN {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.oldest
}

func (g *fakeGate) set(durable, oldest LSN) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.durable, g.oldest = durable, oldest
}

func TestChecksumDetectsCorruption(t *testing.T) {
	d := NewDisk(512)
	id := d.Alloc()
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	d.CorruptPage(id)
	if err := d.Read(id, buf); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("read of corrupt page = %v, want ErrPageCorrupt", err)
	}
	// A fresh write heals the page.
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestFetchSurfacesCorruption(t *testing.T) {
	d := NewDisk(512)
	pool := NewBufferPool(d, 16*512)
	id, buf, err := pool.NewPage(CatData)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("hello"))
	pool.Unpin(id, true)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	d.CorruptPage(id)
	if _, err := pool.Fetch(id, CatData); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("fetch of corrupt page = %v, want ErrPageCorrupt", err)
	}
}

func TestWriteLSNStampsDurablePageLSN(t *testing.T) {
	d := NewDisk(512)
	id := d.Alloc()
	data := make([]byte, 512)
	if d.PageLSN(id) != NoLSN {
		t.Fatal("fresh page has a pageLSN")
	}
	if err := d.WriteLSN(id, data, 42); err != nil {
		t.Fatal(err)
	}
	if got := d.PageLSN(id); got != 42 {
		t.Fatalf("PageLSN = %d, want 42", got)
	}
	// A plain Write preserves the stamp (the caller vouches nothing
	// logged changed).
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if got := d.PageLSN(id); got != 42 {
		t.Fatalf("PageLSN after plain write = %d, want 42", got)
	}
}

func TestNoStealGateBlocksUncommittedWriteback(t *testing.T) {
	const pageSize = 512
	d := NewDisk(pageSize)
	pool := NewBufferPool(d, 8*pageSize)
	gate := &fakeGate{}
	gate.set(0, 50) // nothing durable; statement active since LSN 50
	pool.SetWALGate(gate)

	// Dirty more pages than the pool holds, all stamped with LSNs at or
	// past the oldest active statement — none may be written back.
	var ids []PageID
	for i := 0; i < 24; i++ {
		id, buf, err := pool.NewPage(CatData)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		copy(buf, []byte{byte(i)})
		// Stamp while pinned, as statement scopes do — an unpinned dirty
		// page with no pageLSN is by contract unlogged and evictable.
		pool.StampLSN(id, LSN(60+i), LSN(60+i))
		pool.Unpin(id, true)
		ids = append(ids, id)
	}
	if w := d.PhysWrites(); w != 0 {
		t.Fatalf("gated pages written back: PhysWrites = %d", w)
	}
	if s := pool.Stats(); s.GateStalls == 0 {
		t.Fatal("expected gate stalls while over capacity")
	}

	// Statement ends: pages become flushable, each write-back forcing
	// the log durable through its pageLSN first.
	gate.set(0, InfiniteLSN)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if gate.syncs == 0 {
		t.Fatal("flush never called SyncTo (WAL-before-data violated)")
	}
	if gate.DurableLSN() < 60+23 {
		t.Fatalf("log durable through %d, want >= %d", gate.DurableLSN(), 60+23)
	}
	for i, id := range ids {
		if got := d.PageLSN(id); got != LSN(60+i) {
			t.Fatalf("page %d durable pageLSN = %d, want %d", id, got, 60+i)
		}
	}
}

func TestPoolCrashDropsDirtyFrames(t *testing.T) {
	const pageSize = 512
	d := NewDisk(pageSize)
	pool := NewBufferPool(d, 8*pageSize)
	id, buf, err := pool.NewPage(CatData)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("doomed"))
	pool.Unpin(id, true)

	pool.Crash()
	if w := d.PhysWrites(); w != 0 {
		t.Fatalf("crash wrote pages back: PhysWrites = %d", w)
	}
	// A fresh pool sees the disk's (zero) content, not the lost update.
	pool2 := NewBufferPool(d, 8*pageSize)
	got, err := pool2.Fetch(id, CatData)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Unpin(id, false)
	if !bytes.Equal(got[:6], make([]byte, 6)) {
		t.Fatalf("dirty frame survived crash: %q", got[:6])
	}
}

func TestCorruptFaultMode(t *testing.T) {
	d := NewDisk(512)
	pool := NewBufferPool(d, 8*512)
	id, buf, err := pool.NewPage(CatData)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("fine"))
	pool.Unpin(id, true)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Corrupt on the disk, then verify both the sentinel and that the
	// error names the page.
	d.CorruptPage(id)
	_, err = pool.Fetch(id, CatData)
	if !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("err = %v, want ErrPageCorrupt", err)
	}
}
