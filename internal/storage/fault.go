package storage

import (
	"errors"
	"sync/atomic"
)

// Fault injection lets tests fail specific physical or logical page
// operations to prove that DML statements are all-or-nothing. Two hooks
// exist: Disk.SetFault intercepts physical reads and writes (including
// write-backs during eviction), and BufferPool.SetFetchFault intercepts
// logical page accesses, which is deterministic even when the page is
// cached. Production code never installs either hook.

// ErrInjectedFault is the conventional error returned by injected
// faults; tests match it with errors.Is.
var ErrInjectedFault = errors.New("storage: injected fault")

// FaultOp distinguishes physical reads from writes in a FaultInfo.
type FaultOp uint8

const (
	// FaultRead marks a physical page read.
	FaultRead FaultOp = iota
	// FaultWrite marks a physical page write.
	FaultWrite
)

func (op FaultOp) String() string {
	if op == FaultWrite {
		return "write"
	}
	return "read"
}

// FaultInfo describes one physical page operation about to happen. Seq
// is the 1-based ordinal of the operation since the hook was installed,
// counted across both reads and writes.
type FaultInfo struct {
	Op  FaultOp
	ID  PageID
	Cat Category
	Seq int64
}

// FaultFn inspects an imminent page operation and returns a non-nil
// error to make it fail before any state changes.
type FaultFn func(FaultInfo) error

// FailNth returns a FaultFn that fails the nth (1-based) operation
// accepted by match with ErrInjectedFault; a nil match accepts every
// operation. The hook fires at most once.
func FailNth(n int64, match func(FaultInfo) bool) FaultFn {
	var count atomic.Int64
	return func(fi FaultInfo) error {
		if match != nil && !match(fi) {
			return nil
		}
		if count.Add(1) == n {
			return ErrInjectedFault
		}
		return nil
	}
}

// FetchFaultFn inspects an imminent logical page access (Fetch or
// NewPage; for NewPage the id is InvalidPageID since no page exists
// yet) and returns a non-nil error to fail it.
type FetchFaultFn func(id PageID, cat Category) error

// FailNthFetch returns a FetchFaultFn failing the nth (1-based)
// logical access to a page of the given category with
// ErrInjectedFault. The hook fires at most once.
func FailNthFetch(n int64, cat Category) FetchFaultFn {
	var count atomic.Int64
	return func(_ PageID, c Category) error {
		if c != cat {
			return nil
		}
		if count.Add(1) == n {
			return ErrInjectedFault
		}
		return nil
	}
}

// MatchOp accepts operations of the given kind.
func MatchOp(op FaultOp) func(FaultInfo) bool {
	return func(fi FaultInfo) bool { return fi.Op == op }
}

// MatchCat accepts operations on pages of the given category.
func MatchCat(cat Category) func(FaultInfo) bool {
	return func(fi FaultInfo) bool { return fi.Cat == cat }
}

// MatchAll accepts operations accepted by every given matcher.
func MatchAll(ms ...func(FaultInfo) bool) func(FaultInfo) bool {
	return func(fi FaultInfo) bool {
		for _, m := range ms {
			if !m(fi) {
				return false
			}
		}
		return true
	}
}
