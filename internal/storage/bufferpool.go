package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// PoolStats is a snapshot of buffer-pool counters, split by page
// category the way the paper reports them (Table 2, Fig 7c).
type PoolStats struct {
	LogicalReads  [2]int64 // indexed by Category
	PhysicalReads [2]int64
	Evictions     int64
	Capacity      int // frames
	Resident      int // frames currently cached
}

// HitRatio returns the buffer hit ratio for a category in [0,1];
// it returns 1 when there were no reads.
func (s PoolStats) HitRatio(c Category) float64 {
	lr := s.LogicalReads[c]
	if lr == 0 {
		return 1
	}
	return 1 - float64(s.PhysicalReads[c])/float64(lr)
}

// TotalLogicalReads sums logical reads across categories.
func (s PoolStats) TotalLogicalReads() int64 {
	return s.LogicalReads[CatData] + s.LogicalReads[CatIndex]
}

// TotalPhysicalReads sums physical reads across categories.
func (s PoolStats) TotalPhysicalReads() int64 {
	return s.PhysicalReads[CatData] + s.PhysicalReads[CatIndex]
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	cat   Category
	elem  *list.Element // position in LRU list; nil while pinned

	// ready is closed once the page content is loaded; concurrent
	// fetchers of a page that is still being read from disk wait on it
	// (the I/O latch). loadErr records a failed load.
	ready   chan struct{}
	loadErr error
}

// BufferPool caches disk pages with LRU replacement. Its capacity is
// expressed in bytes so the engine can charge the per-table meta-data
// tax (4 KB per table, per the paper's DB2 figure) against the same
// memory budget: more tables -> smaller pool -> the §5 degradation.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	frames   map[PageID]*frame
	lru      *list.List // front = LRU victim candidate, back = most recent
	capacity int        // max resident frames

	stats PoolStats
}

// ErrPoolExhausted is returned when every frame is pinned and a new page
// must be brought in.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// closedChan is a pre-closed ready channel for frames born loaded.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewBufferPool creates a pool over disk holding at most capacityBytes
// of pages (minimum 8 frames so tiny configurations still function).
func NewBufferPool(disk *Disk, capacityBytes int64) *BufferPool {
	p := &BufferPool{
		disk:   disk,
		frames: make(map[PageID]*frame),
		lru:    list.New(),
	}
	p.setCapacityBytesLocked(capacityBytes)
	return p
}

func (p *BufferPool) setCapacityBytesLocked(capacityBytes int64) {
	frames := int(capacityBytes / int64(p.disk.PageSize()))
	if frames < 8 {
		frames = 8
	}
	p.capacity = frames
}

// SetCapacityBytes resizes the pool; shrinking evicts unpinned pages
// immediately. The catalog calls this when tables are created or
// dropped to keep the meta-data budget accounting current.
func (p *BufferPool) SetCapacityBytes(capacityBytes int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setCapacityBytesLocked(capacityBytes)
	for len(p.frames) > p.capacity {
		if err := p.evictOneLocked(); err != nil {
			return nil // every remaining page pinned; shrink lazily later
		}
	}
	return nil
}

// PageSize returns the page size of the underlying disk.
func (p *BufferPool) PageSize() int { return p.disk.PageSize() }

// Capacity returns the pool size in frames.
func (p *BufferPool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Fetch pins the page and returns its in-memory buffer. The caller must
// Unpin it. cat tags the page for hit-ratio accounting on first load.
func (p *BufferPool) Fetch(id PageID, cat Category) ([]byte, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: fetch of invalid page")
	}
	p.mu.Lock()
	p.stats.LogicalReads[cat]++
	if f, ok := p.frames[id]; ok {
		f.pins++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		ready := f.ready
		p.mu.Unlock()
		// Wait for a concurrent loader to finish filling the frame.
		<-ready
		if err := f.loadErr; err != nil {
			p.mu.Lock()
			f.pins--
			if f.pins == 0 {
				delete(p.frames, id)
			}
			p.mu.Unlock()
			return nil, err
		}
		return f.data, nil
	}
	p.stats.PhysicalReads[cat]++
	if err := p.makeRoomLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, p.disk.PageSize()), pins: 1, cat: cat,
		ready: make(chan struct{})}
	p.frames[id] = f
	p.mu.Unlock()
	// Read outside the lock: the page is pinned and not in the LRU so it
	// cannot be evicted concurrently; simulated latency must not stall
	// other sessions (real databases overlap I/O the same way).
	err := p.disk.Read(id, f.data)
	p.mu.Lock()
	f.loadErr = err
	close(f.ready)
	if err != nil {
		f.pins--
		if f.pins == 0 {
			delete(p.frames, id)
		}
	}
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns its ID
// and buffer.
func (p *BufferPool) NewPage(cat Category) (PageID, []byte, error) {
	id := p.disk.Alloc()
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.makeRoomLocked(); err != nil {
		return InvalidPageID, nil, err
	}
	f := &frame{id: id, data: make([]byte, p.disk.PageSize()), pins: 1, dirty: true, cat: cat,
		ready: closedChan}
	p.frames[id] = f
	return id, f.data, nil
}

// Unpin releases one pin; dirty marks the page for write-back on
// eviction or flush.
func (p *BufferPool) Unpin(id PageID, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
}

func (p *BufferPool) makeRoomLocked() error {
	for len(p.frames) >= p.capacity {
		if err := p.evictOneLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (p *BufferPool) evictOneLocked() error {
	e := p.lru.Front()
	if e == nil {
		return ErrPoolExhausted
	}
	f := e.Value.(*frame)
	p.lru.Remove(e)
	if f.dirty {
		if err := p.disk.Write(f.id, f.data); err != nil {
			return err
		}
	}
	delete(p.frames, f.id)
	p.stats.Evictions++
	return nil
}

// FlushAll writes every dirty resident page back to disk without
// evicting anything.
func (p *BufferPool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.disk.Write(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DropAll flushes dirty pages and empties the cache — the "flush the
// buffer pool and the disk cache between runs" step of the paper's
// cold-cache Test 5. It fails if any page is pinned.
func (p *BufferPool) DropAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropAll with pinned page %d", f.id)
		}
		if f.dirty {
			if err := p.disk.Write(f.id, f.data); err != nil {
				return err
			}
		}
	}
	p.frames = make(map[PageID]*frame)
	p.lru.Init()
	return nil
}

// FreePage removes a page from the cache (if resident) and releases it
// on disk. The page must not be pinned.
func (p *BufferPool) FreePage(id PageID) error {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("storage: FreePage of pinned page %d", id)
		}
		if f.elem != nil {
			p.lru.Remove(f.elem)
		}
		delete(p.frames, id)
	}
	p.mu.Unlock()
	p.disk.Free(id)
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Capacity = p.capacity
	s.Resident = len(p.frames)
	return s
}

// ResetStats zeroes the counters (capacity/resident are recomputed).
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = PoolStats{}
}
