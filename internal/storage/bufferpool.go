package storage

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PoolStats is a snapshot of buffer-pool counters, split by page
// category the way the paper reports them (Table 2, Fig 7c). For a
// sharded pool the snapshot is the sum over all shards, so the totals
// are identical to what a single-mutex pool would have counted: every
// page access increments exactly one shard's counters.
type PoolStats struct {
	LogicalReads  [2]int64 // indexed by Category
	PhysicalReads [2]int64
	Evictions     int64
	// GateStalls counts eviction attempts where every unpinned victim was
	// held back by the no-steal gate, forcing the shard to grow past its
	// frame budget until the gating statement finishes.
	GateStalls int64
	Capacity   int // frames
	Resident   int // frames currently cached
}

// HitRatio returns the buffer hit ratio for a category in [0,1];
// it returns 1 when there were no reads.
func (s PoolStats) HitRatio(c Category) float64 {
	lr := s.LogicalReads[c]
	if lr == 0 {
		return 1
	}
	return 1 - float64(s.PhysicalReads[c])/float64(lr)
}

// TotalLogicalReads sums logical reads across categories.
func (s PoolStats) TotalLogicalReads() int64 {
	return s.LogicalReads[CatData] + s.LogicalReads[CatIndex]
}

// TotalPhysicalReads sums physical reads across categories.
func (s PoolStats) TotalPhysicalReads() int64 {
	return s.PhysicalReads[CatData] + s.PhysicalReads[CatIndex]
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	cat   Category
	elem  *list.Element // position in LRU list; nil while pinned

	// lsn is the page's pageLSN: the LSN of the last log record applied
	// to it (NoLSN when it has never been mutated under WAL). recLSN is
	// the frame-start LSN of the FIRST record since the page was last
	// clean — the dirty-page-table entry that bounds log truncation.
	lsn    LSN
	recLSN LSN

	// ready is closed once the page content is loaded; concurrent
	// fetchers of a page that is still being read from disk wait on it
	// (the I/O latch). loadErr records a failed load.
	ready   chan struct{}
	loadErr error
}

// poolShard is one independently locked slice of the pool: its own
// frame map, LRU list, byte budget, and counters.
type poolShard struct {
	mu       sync.Mutex
	disk     *Disk
	gate     WALGate // nil when running without a WAL
	frames   map[PageID]*frame
	lru      *list.List // front = LRU victim candidate, back = most recent
	capacity int        // max resident frames in this shard

	stats PoolStats
}

// BufferPool caches disk pages with LRU replacement. Its capacity is
// expressed in bytes so the engine can charge the per-table meta-data
// tax (4 KB per table, per the paper's DB2 figure) against the same
// memory budget: more tables -> smaller pool -> the §5 degradation.
//
// The pool is split into power-of-two shards selected by PageID hash
// so concurrent sessions do not serialize on a single mutex; tiny
// configurations collapse to one shard so frame-exhaustion behaviour
// matches an unsharded pool.
type BufferPool struct {
	disk   *Disk
	shards []*poolShard
	mask   uint64

	// fetchFault, when set, is consulted at the top of every Fetch and
	// NewPage; a non-nil return fails the access before any state
	// changes. Unlike Disk.SetFault it fires on cache hits too, which
	// makes it the deterministic hook for fault-injection tests.
	fetchFault atomic.Pointer[FetchFaultFn]
}

// SetWALGate installs the write-ahead log's gate on every shard. Wire
// it before the pool serves traffic (the engine does so at Open); a nil
// gate restores the WAL-free behaviour.
func (p *BufferPool) SetWALGate(g WALGate) {
	for _, s := range p.shards {
		s.mu.Lock()
		s.gate = g
		s.mu.Unlock()
	}
}

// StampLSN records that the log record ending at lsn (whose frame
// starts at recLSN) has been applied to the page. Called by the WAL
// statement scope right after appending the record, while the mutated
// page is still pinned. A missing frame is ignored — it can only mean
// the page was already evicted, which requires it to have been clean
// and stamped on disk.
func (p *BufferPool) StampLSN(id PageID, lsn, recLSN LSN) {
	s := p.shard(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		f.lsn = lsn
		if f.recLSN == NoLSN {
			f.recLSN = recLSN
		}
	}
	s.mu.Unlock()
}

// SetFetchFault installs (or, with nil, removes) a logical-access
// fault hook. See BufferPool.fetchFault.
func (p *BufferPool) SetFetchFault(fn FetchFaultFn) {
	if fn == nil {
		p.fetchFault.Store(nil)
		return
	}
	p.fetchFault.Store(&fn)
}

func (p *BufferPool) checkFetchFault(id PageID, cat Category) error {
	if fp := p.fetchFault.Load(); fp != nil {
		return (*fp)(id, cat)
	}
	return nil
}

// ErrPoolExhausted is returned when every frame is pinned and a new page
// must be brought in.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// errAllGated is the internal verdict of an eviction pass that found
// unpinned victims but every one was held back by the no-steal gate.
// Unlike ErrPoolExhausted it is not an error to callers: the shard
// grows past its budget and retries once the gating statement ends.
var errAllGated = errors.New("storage: all eviction victims gated by no-steal")

// closedChan is a pre-closed ready channel for frames born loaded.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// minShardFrames is the smallest initial per-shard frame budget; pools
// too small to give every shard this many frames use fewer shards.
const minShardFrames = 8

// shardCount picks the number of shards: a power of two, at most
// min(16, GOMAXPROCS*2), reduced until every shard starts with at
// least minShardFrames frames (a 8-frame pool gets exactly one shard,
// preserving single-pool pin/exhaustion semantics).
func shardCount(totalFrames int) int {
	limit := runtime.GOMAXPROCS(0) * 2
	if limit > 16 {
		limit = 16
	}
	n := 1
	for n*2 <= limit {
		n *= 2
	}
	for n > 1 && totalFrames/n < minShardFrames {
		n /= 2
	}
	return n
}

// totalFramesFor converts a byte budget into a frame count (minimum 8
// frames so tiny configurations still function).
func (p *BufferPool) totalFramesFor(capacityBytes int64) int {
	frames := int(capacityBytes / int64(p.disk.PageSize()))
	if frames < 8 {
		frames = 8
	}
	return frames
}

// NewBufferPool creates a pool over disk holding at most capacityBytes
// of pages (minimum 8 frames so tiny configurations still function).
func NewBufferPool(disk *Disk, capacityBytes int64) *BufferPool {
	p := &BufferPool{disk: disk}
	total := p.totalFramesFor(capacityBytes)
	n := shardCount(total)
	p.mask = uint64(n - 1)
	p.shards = make([]*poolShard, n)
	for i := range p.shards {
		p.shards[i] = &poolShard{disk: disk, frames: make(map[PageID]*frame), lru: list.New()}
	}
	for i, c := range splitCapacity(total, n) {
		p.shards[i].capacity = c
	}
	return p
}

// splitCapacity distributes totalFrames over n shards: base share plus
// one extra for the first remainder shards, with a minimum of one frame
// per shard (rounding up so tiny budgets never starve a shard).
func splitCapacity(totalFrames, n int) []int {
	out := make([]int, n)
	base, rem := totalFrames/n, totalFrames%n
	for i := range out {
		c := base
		if i < rem {
			c++
		}
		if c < 1 {
			c = 1
		}
		out[i] = c
	}
	return out
}

// shard selects the home shard of a page. The Fibonacci multiplier
// spreads sequential PageIDs (heap pages are allocated in runs) evenly
// across shards.
func (p *BufferPool) shard(id PageID) *poolShard {
	return p.shards[(uint64(id)*0x9E3779B97F4A7C15>>32)&p.mask]
}

// NumShards reports the shard count (for tests and diagnostics).
func (p *BufferPool) NumShards() int { return len(p.shards) }

// SetCapacityBytes resizes the pool, redistributing the byte budget
// across shards; shrinking evicts unpinned pages immediately. If every
// page of a shard is pinned the shrink is deferred: the shard stays
// over budget and the next Unpin that releases a page retries the
// eviction. The catalog calls this when tables are created or dropped
// to keep the meta-data budget accounting current.
func (p *BufferPool) SetCapacityBytes(capacityBytes int64) error {
	caps := splitCapacity(p.totalFramesFor(capacityBytes), len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		s.capacity = caps[i]
		err := s.shrinkLocked()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// shrinkLocked evicts until the shard is within budget. A fully pinned
// shard is not an error: the shrink is deferred to the next Unpin.
// I/O failures writing back dirty victims are reported.
func (s *poolShard) shrinkLocked() error {
	for len(s.frames) > s.capacity {
		if err := s.evictOneLocked(); err != nil {
			if errors.Is(err, ErrPoolExhausted) || errors.Is(err, errAllGated) {
				return nil // every remaining page pinned or gated; retried later
			}
			return err
		}
	}
	return nil
}

// PageSize returns the page size of the underlying disk.
func (p *BufferPool) PageSize() int { return p.disk.PageSize() }

// Capacity returns the pool size in frames (summed over shards).
func (p *BufferPool) Capacity() int {
	total := 0
	for _, s := range p.shards {
		s.mu.Lock()
		total += s.capacity
		s.mu.Unlock()
	}
	return total
}

// Fetch pins the page and returns its in-memory buffer. The caller must
// Unpin it. cat tags the page for hit-ratio accounting on first load.
func (p *BufferPool) Fetch(id PageID, cat Category) ([]byte, error) {
	if id == InvalidPageID {
		return nil, fmt.Errorf("storage: fetch of invalid page")
	}
	if err := p.checkFetchFault(id, cat); err != nil {
		return nil, err
	}
	s := p.shard(id)
	s.mu.Lock()
	s.stats.LogicalReads[cat]++
	if f, ok := s.frames[id]; ok {
		f.pins++
		if f.elem != nil {
			s.lru.Remove(f.elem)
			f.elem = nil
		}
		ready := f.ready
		s.mu.Unlock()
		// Wait for a concurrent loader to finish filling the frame.
		<-ready
		if err := f.loadErr; err != nil {
			s.mu.Lock()
			f.pins--
			if f.pins == 0 {
				delete(s.frames, id)
			}
			s.mu.Unlock()
			return nil, err
		}
		return f.data, nil
	}
	s.stats.PhysicalReads[cat]++
	if err := s.makeRoomLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, p.disk.PageSize()), pins: 1, cat: cat,
		ready: make(chan struct{})}
	s.frames[id] = f
	s.mu.Unlock()
	// Read outside the lock: the page is pinned and not in the LRU so it
	// cannot be evicted concurrently; simulated latency must not stall
	// other sessions (real databases overlap I/O the same way).
	err := p.disk.Read(id, f.data)
	s.mu.Lock()
	f.loadErr = err
	if err == nil {
		f.lsn = p.disk.PageLSN(id)
	}
	close(f.ready)
	if err != nil {
		f.pins--
		if f.pins == 0 {
			delete(s.frames, id)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns its ID
// and buffer.
func (p *BufferPool) NewPage(cat Category) (PageID, []byte, error) {
	if err := p.checkFetchFault(InvalidPageID, cat); err != nil {
		return InvalidPageID, nil, err
	}
	id := p.disk.AllocCat(cat)
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.makeRoomLocked(); err != nil {
		return InvalidPageID, nil, err
	}
	f := &frame{id: id, data: make([]byte, p.disk.PageSize()), pins: 1, dirty: true, cat: cat,
		ready: closedChan}
	s.frames[id] = f
	return id, f.data, nil
}

// Unpin releases one pin; dirty marks the page for write-back on
// eviction or flush. Releasing the last pin also retries any shrink
// that was deferred because every page was pinned.
func (p *BufferPool) Unpin(id PageID, dirty bool) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok || f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		f.elem = s.lru.PushBack(f)
		if len(s.frames) > s.capacity {
			// Deferred shrink: the pool was resized below its resident
			// count while everything was pinned. Best effort — an I/O
			// error here just leaves the page for the next retry.
			_ = s.shrinkLocked()
		}
	}
}

func (s *poolShard) makeRoomLocked() error {
	for len(s.frames) >= s.capacity {
		if err := s.evictOneLocked(); err != nil {
			if errors.Is(err, errAllGated) {
				// No-steal outranks the frame budget: admit the page and
				// let the deferred shrink reclaim the excess when the
				// gating statement finishes.
				s.stats.GateStalls++
				return nil
			}
			return err
		}
	}
	return nil
}

// evictOneLocked writes back and drops one unpinned frame, walking the
// LRU list from cold to hot. Under a WAL gate a dirty victim must be
// committed work only (no-steal: pageLSN below the oldest active
// statement's begin LSN) and the log must be durable through its
// pageLSN before the write-back (WAL-before-data).
func (s *poolShard) evictOneLocked() error {
	if s.lru.Len() == 0 {
		return ErrPoolExhausted
	}
	oldestActive := InfiniteLSN
	if s.gate != nil {
		oldestActive = s.gate.OldestActiveLSN()
	}
	for e := s.lru.Front(); e != nil; e = e.Next() {
		f := e.Value.(*frame)
		if f.dirty && s.gate != nil && f.lsn != NoLSN && f.lsn >= oldestActive {
			continue // may carry uncommitted work; redo could not undo it
		}
		if f.dirty {
			if s.gate != nil && f.lsn > s.gate.DurableLSN() {
				if err := s.gate.SyncTo(f.lsn); err != nil {
					return err
				}
			}
			if err := s.disk.WriteLSN(f.id, f.data, f.lsn); err != nil {
				return err
			}
		}
		s.lru.Remove(e)
		f.elem = nil
		delete(s.frames, f.id)
		s.stats.Evictions++
		return nil
	}
	return errAllGated
}

// FlushAll writes every dirty resident page back to disk without
// evicting anything. Under a WAL gate each write-back honours
// WAL-before-data; pages gated by no-steal (mutated by a still-active
// statement) are skipped and stay dirty.
func (p *BufferPool) FlushAll() error {
	for _, s := range p.shards {
		s.mu.Lock()
		oldestActive := InfiniteLSN
		if s.gate != nil {
			oldestActive = s.gate.OldestActiveLSN()
		}
		for _, f := range s.frames {
			if !f.dirty {
				continue
			}
			if s.gate != nil && f.lsn != NoLSN && f.lsn >= oldestActive {
				continue
			}
			if s.gate != nil && f.lsn > s.gate.DurableLSN() {
				if err := s.gate.SyncTo(f.lsn); err != nil {
					s.mu.Unlock()
					return err
				}
			}
			if err := s.disk.WriteLSN(f.id, f.data, f.lsn); err != nil {
				s.mu.Unlock()
				return err
			}
			f.dirty = false
			f.recLSN = NoLSN
		}
		s.mu.Unlock()
	}
	return nil
}

// DropAll flushes dirty pages and empties the cache — the "flush the
// buffer pool and the disk cache between runs" step of the paper's
// cold-cache Test 5. It fails if any page is pinned. All shards are
// locked together so the drop is atomic with respect to fetchers.
func (p *BufferPool) DropAll() error {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range p.shards {
			s.mu.Unlock()
		}
	}()
	for _, s := range p.shards {
		for _, f := range s.frames {
			if f.pins > 0 {
				return fmt.Errorf("storage: DropAll with pinned page %d", f.id)
			}
		}
	}
	for _, s := range p.shards {
		for _, f := range s.frames {
			if f.dirty {
				if s.gate != nil && f.lsn > s.gate.DurableLSN() {
					if err := s.gate.SyncTo(f.lsn); err != nil {
						return err
					}
				}
				if err := s.disk.WriteLSN(f.id, f.data, f.lsn); err != nil {
					return err
				}
			}
		}
		s.frames = make(map[PageID]*frame)
		s.lru.Init()
	}
	return nil
}

// Crash discards every resident frame without writing anything back —
// the volatile half of power loss. Pins are ignored: the sessions that
// held them died with the machine. The disk and the WAL's durable
// prefix are all that survive.
func (p *BufferPool) Crash() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.frames = make(map[PageID]*frame)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// DirtyPageTable snapshots the recLSN of every dirty resident page —
// the table a fuzzy checkpoint records so recovery knows how far back
// replay must start.
func (p *BufferPool) DirtyPageTable() map[PageID]LSN {
	out := make(map[PageID]LSN)
	for _, s := range p.shards {
		s.mu.Lock()
		for id, f := range s.frames {
			if f.dirty && f.recLSN != NoLSN {
				out[id] = f.recLSN
			}
		}
		s.mu.Unlock()
	}
	return out
}

// OldestRecLSN returns the smallest recLSN among dirty pages, or
// InfiniteLSN when none is dirty. Log truncation must not pass it.
func (p *BufferPool) OldestRecLSN() LSN {
	oldest := InfiniteLSN
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty && f.recLSN != NoLSN && f.recLSN < oldest {
				oldest = f.recLSN
			}
		}
		s.mu.Unlock()
	}
	return oldest
}

// FreePage removes a page from the cache (if resident) and releases it
// on disk. The page must not be pinned.
func (p *BufferPool) FreePage(id PageID) error {
	s := p.shard(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if f.pins > 0 {
			s.mu.Unlock()
			return fmt.Errorf("storage: FreePage of pinned page %d", id)
		}
		if f.elem != nil {
			s.lru.Remove(f.elem)
		}
		delete(s.frames, id)
	}
	s.mu.Unlock()
	p.disk.Free(id)
	return nil
}

// Stats returns a snapshot of the pool counters, aggregated over
// shards so the totals match the pre-shard single-pool accounting.
func (p *BufferPool) Stats() PoolStats {
	var out PoolStats
	for _, s := range p.shards {
		s.mu.Lock()
		for c := 0; c < 2; c++ {
			out.LogicalReads[c] += s.stats.LogicalReads[c]
			out.PhysicalReads[c] += s.stats.PhysicalReads[c]
		}
		out.Evictions += s.stats.Evictions
		out.GateStalls += s.stats.GateStalls
		out.Capacity += s.capacity
		out.Resident += len(s.frames)
		s.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters (capacity/resident are recomputed).
func (p *BufferPool) ResetStats() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.stats = PoolStats{}
		s.mu.Unlock()
	}
}
