package storage

import (
	"fmt"
	"testing"
)

// TestHeapScannerNextPage checks the page-at-a-time scan: every live
// record comes back exactly once, grouped by page, with one buffer-pool
// visit per page.
func TestHeapScannerNextPage(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	want := map[string]RID{}
	for i := 0; i < 150; i++ {
		s := fmt.Sprintf("page-rec-%03d", i)
		rid, err := h.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		want[s] = rid
	}
	for i := 0; i < 150; i += 7 {
		s := fmt.Sprintf("page-rec-%03d", i)
		if err := h.Delete(want[s]); err != nil {
			t.Fatal(err)
		}
		delete(want, s)
	}
	if h.NumPages() < 2 {
		t.Fatalf("need a multi-page heap, got %d pages", h.NumPages())
	}
	sc := h.Scanner()
	seen := 0
	for {
		rids, recs, ok, err := sc.NextPage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(rids) != len(recs) || len(recs) == 0 {
			t.Fatalf("rids/recs mismatch: %d vs %d", len(rids), len(recs))
		}
		page := rids[0].Page
		for i, rec := range recs {
			if rids[i].Page != page {
				t.Errorf("batch mixes pages %d and %d", page, rids[i].Page)
			}
			wantRID, exists := want[string(rec)]
			if !exists {
				t.Fatalf("NextPage returned deleted/unknown record %q", rec)
			}
			if rids[i] != wantRID {
				t.Errorf("rid mismatch for %q", rec)
			}
			seen++
		}
	}
	if seen != len(want) {
		t.Errorf("NextPage saw %d records, want %d", seen, len(want))
	}
}

// TestHeapScannerArenaValidWithinPage pins down the aliasing contract:
// every record slice handed out for one page stays intact until the
// scanner advances, because the arena is reserved up front and appends
// never reallocate it mid-page.
func TestHeapScannerArenaValidWithinPage(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	for i := 0; i < 60; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("arena-%03d-%s", i, "xxxxxxxxxxxxxxxx"))); err != nil {
			t.Fatal(err)
		}
	}
	sc := h.Scanner()
	for {
		_, recs, ok, err := sc.NextPage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// Snapshot all records, then re-check every one: if an append had
		// reallocated the arena mid-page, earlier slices would hold stale
		// bytes from a dead backing array while later ones point into the
		// new one — content comparison against a copy catches any tear.
		copies := make([]string, len(recs))
		for i, rec := range recs {
			copies[i] = string(rec)
		}
		for i, rec := range recs {
			if string(rec) != copies[i] {
				t.Fatalf("record %d changed within its page", i)
			}
		}
	}
}

// TestHeapFileView checks the pin-during-callback point read.
func TestHeapFileView(t *testing.T) {
	h := newTestHeap(t, InsertBestFit)
	rid, err := h.Insert([]byte("view-me"))
	if err != nil {
		t.Fatal(err)
	}
	var got string
	if err := h.View(rid, func(rec []byte) error {
		got = string(rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "view-me" {
		t.Errorf("View = %q", got)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if err := h.View(rid, func([]byte) error { return nil }); err == nil {
		t.Error("View of deleted record should error")
	}
	// Callback errors propagate.
	rid2, _ := h.Insert([]byte("x"))
	wantErr := fmt.Errorf("callback failure")
	if err := h.View(rid2, func([]byte) error { return wantErr }); err != wantErr {
		t.Errorf("View error = %v, want %v", err, wantErr)
	}
}
