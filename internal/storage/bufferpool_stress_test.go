package storage

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBufferPoolConcurrentStress hammers Fetch/Unpin, capacity churn
// (SetCapacityBytes), and DropAll from many goroutines across shards,
// then checks the invariants the sharded pool must preserve:
//
//   - aggregated LogicalReads equals the number of Fetch calls issued
//     (every access lands on exactly one shard's counters);
//   - PhysicalReads never exceeds LogicalReads per category (logical =
//     physical + hits);
//   - after quiescing, no page is pinned (DropAll succeeds) and the
//     resident count respects the final capacity;
//   - page contents survive eviction, write-back, and DropAll churn.
func TestBufferPoolConcurrentStress(t *testing.T) {
	const (
		pageSize = 128
		frames   = 64
		pages    = 256
		workers  = 8
		iters    = 400
	)
	d := NewDisk(pageSize)
	pool := NewBufferPool(d, pageSize*frames)

	ids := make([]PageID, pages)
	for i := range ids {
		id, buf, err := pool.NewPage(CatData)
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		pool.Unpin(id, true)
		ids[i] = id
	}
	pool.ResetStats()

	var fetches [2]int64 // Fetch calls issued, by category
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cat := CatData
			if w%2 == 1 {
				cat = CatIndex
			}
			for i := 0; i < iters; i++ {
				id := ids[(w*31+i*7)%pages]
				atomic.AddInt64(&fetches[cat], 1)
				buf, err := pool.Fetch(id, cat)
				if err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue
					}
					t.Errorf("fetch: %v", err)
					return
				}
				if want := byte((w*31 + i*7) % pages); buf[0] != want {
					t.Errorf("page %d corrupted: got %d want %d", id, buf[0], want)
					pool.Unpin(id, false)
					return
				}
				pool.Unpin(id, false)
			}
		}()
	}
	// Capacity churn: shrink and grow while fetchers run, exercising the
	// deferred-shrink path when shards are momentarily fully pinned.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int64{pageSize * 16, pageSize * frames, pageSize * 8, pageSize * frames}
		for i := 0; i < 50; i++ {
			if err := pool.SetCapacityBytes(sizes[i%len(sizes)]); err != nil {
				t.Errorf("SetCapacityBytes: %v", err)
				return
			}
		}
	}()
	// Cache drops racing the fetchers; "pinned page" refusals are the
	// expected outcome while fetchers hold pins.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := pool.DropAll(); err != nil && !strings.Contains(err.Error(), "pinned") {
				t.Errorf("DropAll: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if err := pool.SetCapacityBytes(pageSize * frames); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	for _, cat := range []Category{CatData, CatIndex} {
		if got, want := s.LogicalReads[cat], atomic.LoadInt64(&fetches[cat]); got != want {
			t.Errorf("cat %d: logical reads %d, want %d (one per Fetch call)", cat, got, want)
		}
		if s.PhysicalReads[cat] > s.LogicalReads[cat] {
			t.Errorf("cat %d: physical %d > logical %d", cat, s.PhysicalReads[cat], s.LogicalReads[cat])
		}
	}
	if s.Capacity != frames {
		t.Errorf("capacity %d, want %d", s.Capacity, frames)
	}
	if s.Resident > s.Capacity {
		t.Errorf("resident %d exceeds capacity %d after quiesce", s.Resident, s.Capacity)
	}
	// Quiesced: every pin was released, so DropAll must succeed...
	if err := pool.DropAll(); err != nil {
		t.Fatalf("DropAll after quiesce: %v", err)
	}
	// ...and every page must have survived the churn via write-back.
	for i, id := range ids {
		buf, err := pool.Fetch(id, CatData)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Errorf("page %d lost its data: got %d want %d", id, buf[0], byte(i))
		}
		pool.Unpin(id, false)
	}
}

// TestBufferPoolDeferredShrink pins every page, shrinks the pool (which
// must not fail even though nothing is evictable), and verifies the
// shrink is applied as pins are released — the SetCapacityBytes bug
// this replaces silently carried the excess residents forever.
func TestBufferPoolDeferredShrink(t *testing.T) {
	const pageSize = 128
	d := NewDisk(pageSize)
	pool := NewBufferPool(d, pageSize*64)
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, buf, err := pool.NewPage(CatData)
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		ids = append(ids, id)
	}
	// Everything pinned: the shrink must be recorded, not applied (and
	// must not error).
	if err := pool.SetCapacityBytes(pageSize * 8); err != nil {
		t.Fatal(err)
	}
	if got := pool.Capacity(); got != 8 {
		t.Fatalf("capacity %d after shrink, want 8", got)
	}
	if got := pool.Stats().Resident; got != 64 {
		t.Fatalf("resident %d before unpin, want 64 (nothing evictable)", got)
	}
	for _, id := range ids {
		pool.Unpin(id, true)
	}
	// Releasing the pins must have retried the deferred shrink.
	if got := pool.Stats().Resident; got > 8 {
		t.Errorf("resident %d after unpinning, want <= 8 (deferred shrink not retried)", got)
	}
	// The evicted pages' data must have been written back.
	for i, id := range ids {
		buf, err := pool.Fetch(id, CatData)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Errorf("page %d lost its data on deferred eviction", id)
		}
		pool.Unpin(id, false)
	}
}
