// Package storage implements the paper's physical substrate: fixed-size
// slotted pages, a page store ("disk") with simulated read latency, an
// LRU buffer pool whose capacity is charged against the database's
// memory budget, and heap files with the two insert policies (best-fit
// and append) that DB2 switches between in the paper's §5 experiment.
//
// Index pages are fetched through the same buffer pool as data pages and
// are tagged with a category so the pool can report the separate data
// and index hit ratios shown in Table 2 / Figure 7(c) of the paper.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultPageSize matches the 8 KB page size used for all user data and
// indexes in the paper's experiments.
const DefaultPageSize = 8192

// PageID identifies a page on the Disk. Zero is never a valid page.
type PageID uint64

// InvalidPageID is the zero PageID.
const InvalidPageID PageID = 0

// Category classifies a page for buffer-pool statistics.
type Category uint8

const (
	// CatData marks heap-file pages holding table rows.
	CatData Category = iota
	// CatIndex marks B+tree pages.
	CatIndex
)

func (c Category) String() string {
	if c == CatIndex {
		return "index"
	}
	return "data"
}

// Slotted page layout:
//
//	[0:2)  numSlots  uint16
//	[2:4)  freeLow   uint16  end of slot array / start of free space
//	[4:6)  freeHigh  uint16  start of record area (records grow downward)
//	then numSlots slot entries of 4 bytes each: offset uint16, length uint16.
//	A slot with offset 0 is a tombstone (page offsets are always >= header).
const (
	slotSize   = 4
	pageHeader = 6
)

// SlottedPage provides record-level access to a page buffer. It does not
// own the buffer; callers keep the page pinned while using it.
type SlottedPage struct {
	buf []byte
}

// Slotted wraps an existing page buffer.
func Slotted(buf []byte) SlottedPage { return SlottedPage{buf: buf} }

// InitSlotted formats buf as an empty slotted page.
func InitSlotted(buf []byte) SlottedPage {
	p := SlottedPage{buf: buf}
	p.setNumSlots(0)
	p.setFreeLow(pageHeader)
	p.setFreeHigh(uint16(len(buf)))
	return p
}

func (p SlottedPage) numSlots() uint16     { return binary.LittleEndian.Uint16(p.buf[0:2]) }
func (p SlottedPage) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.buf[0:2], n) }
func (p SlottedPage) freeLow() uint16      { return binary.LittleEndian.Uint16(p.buf[2:4]) }
func (p SlottedPage) setFreeLow(v uint16)  { binary.LittleEndian.PutUint16(p.buf[2:4], v) }
func (p SlottedPage) freeHigh() uint16     { return binary.LittleEndian.Uint16(p.buf[4:6]) }
func (p SlottedPage) setFreeHigh(v uint16) { binary.LittleEndian.PutUint16(p.buf[4:6], v) }

func (p SlottedPage) slotAt(i uint16) (off, length uint16) {
	base := pageHeader + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.buf[base : base+2]),
		binary.LittleEndian.Uint16(p.buf[base+2 : base+4])
}

func (p SlottedPage) setSlot(i, off, length uint16) {
	base := pageHeader + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], length)
}

// NumSlots returns the number of slots ever allocated on the page,
// including tombstones.
func (p SlottedPage) NumSlots() int { return int(p.numSlots()) }

// FreeSpace returns the bytes available for a new record including its
// slot entry.
func (p SlottedPage) FreeSpace() int {
	free := int(p.freeHigh()) - int(p.freeLow())
	if free < 0 {
		return 0
	}
	return free
}

// ReclaimableSpace returns FreeSpace plus the dead bytes that a Compact
// would recover from tombstoned records.
func (p SlottedPage) ReclaimableSpace() int {
	live := 0
	n := p.numSlots()
	for i := uint16(0); i < n; i++ {
		if off, length := p.slotAt(i); off != 0 {
			live += int(length)
		}
	}
	return len(p.buf) - pageHeader - int(n)*slotSize - live
}

// ErrPageFull is returned when a record does not fit on the page.
var ErrPageFull = errors.New("storage: page full")

// Insert places rec on the page and returns its slot number.
func (p SlottedPage) Insert(rec []byte) (uint16, error) {
	return p.InsertAvoiding(rec, nil)
}

// InsertAvoiding is Insert with a slot-reuse veto: tombstone slots for
// which avoid returns true are not reused (their RID is reserved — a
// version chain still refers to it). A nil avoid admits every slot.
func (p SlottedPage) InsertAvoiding(rec []byte, avoid func(uint16) bool) (uint16, error) {
	need := len(rec) + slotSize
	// Reuse a tombstone slot if one exists (no new slot entry needed).
	n := p.numSlots()
	var reuse = n
	for i := uint16(0); i < n; i++ {
		if off, _ := p.slotAt(i); off == 0 && (avoid == nil || !avoid(i)) {
			reuse = i
			need = len(rec)
			break
		}
	}
	if p.FreeSpace() < need {
		if p.ReclaimableSpace() < need {
			return 0, ErrPageFull
		}
		p.Compact()
	}
	newHigh := p.freeHigh() - uint16(len(rec))
	copy(p.buf[newHigh:], rec)
	p.setFreeHigh(newHigh)
	if reuse == n {
		p.setNumSlots(n + 1)
		p.setFreeLow(p.freeLow() + slotSize)
	}
	p.setSlot(reuse, newHigh, uint16(len(rec)))
	return reuse, nil
}

// InsertAt places rec into the specific tombstoned slot i, restoring a
// previously deleted record at its original RID (the undo path for
// deletes and relocations). The slot must exist and be dead.
func (p SlottedPage) InsertAt(i uint16, rec []byte) error {
	if i >= p.numSlots() {
		return fmt.Errorf("storage: restore into slot %d out of range", i)
	}
	if off, _ := p.slotAt(i); off != 0 {
		return fmt.Errorf("storage: restore into live slot %d", i)
	}
	if p.FreeSpace() < len(rec) {
		if p.ReclaimableSpace() < len(rec) {
			return ErrPageFull
		}
		p.Compact()
	}
	newHigh := p.freeHigh() - uint16(len(rec))
	copy(p.buf[newHigh:], rec)
	p.setFreeHigh(newHigh)
	p.setSlot(i, newHigh, uint16(len(rec)))
	return nil
}

// ErrSlotGone marks a Get against a tombstoned slot, so callers that
// legitimately probe for liveness (version-chain reads) can tell "row
// currently absent" from real storage failures.
var ErrSlotGone = errors.New("storage: slot deleted")

// Get returns the record stored in slot i. The returned slice aliases
// the page buffer; callers must copy it if they retain it past unpin.
func (p SlottedPage) Get(i uint16) ([]byte, error) {
	if i >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range", i)
	}
	off, length := p.slotAt(i)
	if off == 0 {
		return nil, fmt.Errorf("storage: slot %d: %w", i, ErrSlotGone)
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones slot i. The record bytes become dead space reclaimed
// by Compact.
func (p SlottedPage) Delete(i uint16) error {
	if i >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range", i)
	}
	off, _ := p.slotAt(i)
	if off == 0 {
		return fmt.Errorf("storage: slot %d already deleted", i)
	}
	p.setSlot(i, 0, 0)
	return nil
}

// Update replaces the record in slot i. If the new record does not fit
// in place and the page has no room, ErrPageFull is returned and the
// caller relocates the record.
func (p SlottedPage) Update(i uint16, rec []byte) error {
	if i >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range", i)
	}
	off, length := p.slotAt(i)
	if off == 0 {
		return fmt.Errorf("storage: slot %d deleted", i)
	}
	if len(rec) <= int(length) {
		copy(p.buf[off:], rec)
		p.setSlot(i, off, uint16(len(rec)))
		return nil
	}
	if p.FreeSpace() >= len(rec) {
		newHigh := p.freeHigh() - uint16(len(rec))
		copy(p.buf[newHigh:], rec)
		p.setFreeHigh(newHigh)
		p.setSlot(i, newHigh, uint16(len(rec)))
		return nil
	}
	// Compaction reclaims dead space from deletes and updates plus this
	// record's own bytes, so the page is full only if the record's
	// replacement genuinely does not fit — which also guarantees that
	// restoring a record the page previously held always succeeds.
	if p.ReclaimableSpace()+int(length) >= len(rec) {
		p.setSlot(i, 0, 0)
		p.Compact()
		newHigh := p.freeHigh() - uint16(len(rec))
		copy(p.buf[newHigh:], rec)
		p.setFreeHigh(newHigh)
		p.setSlot(i, newHigh, uint16(len(rec)))
		return nil
	}
	return ErrPageFull
}

// Compact rewrites live records contiguously at the end of the page,
// reclaiming dead space left by deletes and relocating updates.
func (p SlottedPage) Compact() {
	n := p.numSlots()
	type live struct {
		slot, off, length uint16
	}
	var lives []live
	for i := uint16(0); i < n; i++ {
		if off, length := p.slotAt(i); off != 0 {
			lives = append(lives, live{i, off, length})
		}
	}
	tmp := make([]byte, 0, len(p.buf))
	high := uint16(len(p.buf))
	// Copy records out first (they may overlap destinations).
	recs := make([][]byte, len(lives))
	for i, l := range lives {
		recs[i] = append(tmp[len(tmp):], p.buf[l.off:l.off+l.length]...)
		tmp = tmp[:len(tmp)+int(l.length)]
	}
	for i, l := range lives {
		high -= l.length
		copy(p.buf[high:], recs[i])
		p.setSlot(l.slot, high, l.length)
	}
	p.setFreeHigh(high)
}

// LiveRecords calls fn for every non-deleted slot in slot order.
func (p SlottedPage) LiveRecords(fn func(slot uint16, rec []byte) bool) {
	n := p.numSlots()
	for i := uint16(0); i < n; i++ {
		off, length := p.slotAt(i)
		if off == 0 {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}
