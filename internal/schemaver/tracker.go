package schemaver

import (
	"sync"
	"time"
)

// Progress is one table's backfill state: how far the background worker
// has gotten rewriting cold rows up to the newest schema version.
type Progress struct {
	Table string
	// Scanned counts rows examined; Rewritten counts rows physically
	// upgraded to the newest schema encoding.
	Scanned   int64
	Rewritten int64
	// Skipped counts rows left alone because a version chain pins them
	// (a concurrent transaction is mid-write); Residual counts rows
	// whose upgraded encoding no longer fit their page in place — both
	// are picked up by a later pass or by lazy DML upgrade.
	Skipped  int64
	Residual int64
	// Batches counts WAL'd batches committed; Passes counts complete
	// walks of the heap.
	Batches int64
	Passes  int64
	// IdlePasses counts consecutive passes that found stale rows but
	// could not rewrite any (e.g. an old snapshot still pins the prior
	// schema version). Reset on any progress.
	IdlePasses int64
	// Done reports the table is fully migrated: a complete pass found
	// no stale rows and the schema chain has a single live version.
	Done bool
	// Updated is the wall-clock time of the last state change.
	Updated time.Time
}

// Stuck reports a migration that is pending but has stopped moving:
// several consecutive passes made no progress. A long-lived snapshot
// pinning the old schema version is the usual cause.
func (p Progress) Stuck() bool { return !p.Done && p.IdlePasses >= 3 }

// Tracker aggregates per-table backfill progress for diagnostics
// (.migrate-status, engine stats). It is independent of the worker's
// scheduling; the worker reports in, readers snapshot out.
type Tracker struct {
	mu     sync.Mutex
	tables map[string]*Progress
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{tables: make(map[string]*Progress)} }

// Begin (re)opens a table's migration: marks it pending and resets the
// per-pass counters. Called when an ALTER publishes a new version.
func (t *Tracker) Begin(table string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.tables[table]
	if p == nil {
		p = &Progress{Table: table}
		t.tables[table] = p
	}
	p.Done = false
	p.IdlePasses = 0
	p.Updated = time.Now()
}

// Update applies fn to a table's progress under the tracker lock.
func (t *Tracker) Update(table string, fn func(*Progress)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.tables[table]
	if p == nil {
		p = &Progress{Table: table}
		t.tables[table] = p
	}
	fn(p)
	p.Updated = time.Now()
}

// Get returns a copy of one table's progress (zero Progress, false if
// the table never migrated).
func (t *Tracker) Get(table string) (Progress, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.tables[table]
	if !ok {
		return Progress{}, false
	}
	return *p, true
}

// Snapshot returns a copy of every table's progress, unordered.
func (t *Tracker) Snapshot() []Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Progress, 0, len(t.tables))
	for _, p := range t.tables {
		out = append(out, *p)
	}
	return out
}

// Pending reports how many tables are not Done.
func (t *Tracker) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.tables {
		if !p.Done {
			n++
		}
	}
	return n
}
