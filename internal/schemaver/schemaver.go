// Package schemaver makes table schemas multi-versioned the same way
// rows are: every ALTER publishes a new schema version stamped with a
// commit timestamp from the transaction manager's clock, and a snapshot
// transaction resolves the version whose commit timestamp is newest
// among those <= its begin timestamp — exactly the row-visibility rule.
// In-flight snapshots therefore keep planning and decoding under the
// schema they began with while later statements see the new one, which
// is what lets the engine publish an ALTER under a single table latch
// instead of fencing it off from every open transaction ("Online Schema
// Evolution is (Almost) Free for Snapshot Databases", VLDB 2023).
//
// The whole design leans on one physical invariant kept by the catalog:
// the physical column space only ever grows and existing slots never
// move or change meaning.
//
//   - ADD COLUMN appends a slot;
//   - DROP COLUMN flips a Dropped flag in place (the slot and any row
//     bytes in it survive so older versions keep decoding them);
//   - widening (INT -> FLOAT) changes a slot's declared type in place
//     (the order-preserving key encoding is identical for both kinds,
//     so even indexed columns need no key maintenance).
//
// Any version's column list is therefore a strict prefix of the current
// physical column space, row records are self-describing (each value
// carries its kind; decode pads short rows with NULLs), and a plan
// compiled against any version addresses rows written under any other
// version with plain physical ordinals.
package schemaver

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// Column is one physical column slot. The catalog aliases this type, so
// it is the single definition of a column across the system.
type Column struct {
	Name    string
	Type    types.ColumnType
	NotNull bool
	// Dropped marks a slot whose column was removed: it is invisible to
	// schema versions at or after the drop, but the slot (and the row
	// bytes stored in it) remain so older versions keep reading it.
	Dropped bool
}

// Version is one published schema: the column prefix visible to
// snapshots whose begin timestamp is >= CommitTS (until a newer version
// shadows it).
type Version struct {
	// Ver numbers versions 1..n in publication order.
	Ver int64
	// CommitTS is the commit-clock stamp the version published at.
	// The initial version carries 0: visible to every snapshot.
	CommitTS uint64
	// Cols is the version's column list — a prefix of the physical
	// column space, including any slots already Dropped *before* this
	// version (kept so physical ordinals stay aligned).
	Cols []Column
}

// VisibleCols returns the version's non-dropped columns in order.
func (v Version) VisibleCols() []Column {
	out := make([]Column, 0, len(v.Cols))
	for _, c := range v.Cols {
		if !c.Dropped {
			out = append(out, c)
		}
	}
	return out
}

// Chain is one table's schema history, newest last. It is safe for
// concurrent use; the engine publishes under the table's exclusive
// latch and resolves under shared latches, but the chain locks itself
// so diagnostic readers (.schema, stats) need no latch discipline.
type Chain struct {
	mu   sync.RWMutex
	vers []Version
}

// NewChain starts a history at version 1 with CommitTS 0 (visible to
// every snapshot, like rows that predate the oldest transaction).
func NewChain(cols []Column) *Chain {
	return &Chain{vers: []Version{{Ver: 1, CommitTS: 0, Cols: append([]Column(nil), cols...)}}}
}

// Latest returns the newest version.
func (c *Chain) Latest() Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.vers[len(c.vers)-1]
}

// At resolves the version a snapshot with begin timestamp ts reads
// under: the newest version with CommitTS <= ts. ts 0 (no snapshot yet)
// resolves the initial version.
func (c *Chain) At(ts uint64) Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := len(c.vers) - 1; i >= 0; i-- {
		if c.vers[i].CommitTS <= ts {
			return c.vers[i]
		}
	}
	// Unreachable: vers[0].CommitTS == 0 <= every ts.
	return c.vers[0]
}

// Publish appends a new version with the given columns and commit
// stamp, returning its version number. The stamp must be newer than the
// chain head's (the commit clock only moves forward).
func (c *Chain) Publish(cols []Column, commitTS uint64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.vers[len(c.vers)-1]
	if commitTS <= head.CommitTS {
		panic(fmt.Sprintf("schemaver: publish stamp %d not after head %d", commitTS, head.CommitTS))
	}
	v := Version{Ver: head.Ver + 1, CommitTS: commitTS, Cols: append([]Column(nil), cols...)}
	c.vers = append(c.vers, v)
	return v.Ver
}

// SetLatest replaces the head version's columns in place without
// publishing a new version. Only valid when no snapshot could observe
// the difference — the offline (DDL-fenced) catalog paths, where the
// engine holds every transaction out.
func (c *Chain) SetLatest(cols []Column) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vers[len(c.vers)-1].Cols = append([]Column(nil), cols...)
}

// Prune drops versions no live snapshot can resolve anymore: while the
// chain has more than one version and the *second* version's CommitTS
// is <= horizon, the first version is unreachable (every snapshot at or
// past the horizon resolves the second or newer). Returns how many
// versions were pruned.
func (c *Chain) Prune(horizon uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for len(c.vers) > 1 && c.vers[1].CommitTS <= horizon {
		c.vers = c.vers[1:]
		n++
	}
	return n
}

// Len reports how many versions the chain currently holds.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vers)
}

// Versions returns a copy of the history, oldest first.
func (c *Chain) Versions() []Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Version(nil), c.vers...)
}
