package schemaver

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func cols(names ...string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n, Type: types.ColumnType{Kind: types.KindInt}}
	}
	return out
}

func TestChainResolution(t *testing.T) {
	c := NewChain(cols("a", "b"))
	if got := c.Latest(); got.Ver != 1 || len(got.Cols) != 2 {
		t.Fatalf("initial version wrong: %+v", got)
	}
	if v := c.At(0); v.Ver != 1 {
		t.Fatalf("At(0) = v%d, want v1", v.Ver)
	}

	if ver := c.Publish(cols("a", "b", "c"), 10); ver != 2 {
		t.Fatalf("Publish returned %d, want 2", ver)
	}
	c.Publish(cols("a", "b", "c", "d"), 20)

	tests := []struct {
		ts   uint64
		ver  int64
		ncol int
	}{
		{0, 1, 2}, {9, 1, 2}, {10, 2, 3}, {15, 2, 3}, {20, 3, 4}, {99, 3, 4},
	}
	for _, tc := range tests {
		v := c.At(tc.ts)
		if v.Ver != tc.ver || len(v.Cols) != tc.ncol {
			t.Errorf("At(%d) = v%d/%d cols, want v%d/%d", tc.ts, v.Ver, len(v.Cols), tc.ver, tc.ncol)
		}
	}
}

func TestChainPublishMonotonic(t *testing.T) {
	c := NewChain(cols("a"))
	c.Publish(cols("a", "b"), 5)
	defer func() {
		if recover() == nil {
			t.Fatal("publishing a stale stamp should panic")
		}
	}()
	c.Publish(cols("a", "b", "c"), 5)
}

func TestChainPrune(t *testing.T) {
	c := NewChain(cols("a"))
	c.Publish(cols("a", "b"), 10)
	c.Publish(cols("a", "b", "c"), 20)

	if n := c.Prune(5); n != 0 || c.Len() != 3 {
		t.Fatalf("Prune(5) removed %d (len %d), want 0 (len 3)", n, c.Len())
	}
	// Horizon 10: every snapshot resolves v2 or newer; v1 unreachable.
	if n := c.Prune(10); n != 1 || c.Len() != 2 {
		t.Fatalf("Prune(10) removed %d (len %d), want 1 (len 2)", n, c.Len())
	}
	if v := c.At(10); v.Ver != 2 {
		t.Fatalf("post-prune At(10) = v%d, want v2", v.Ver)
	}
	// Horizon past everything: only the head survives.
	if n := c.Prune(100); n != 1 || c.Len() != 1 {
		t.Fatalf("Prune(100) removed %d (len %d), want 1 (len 1)", n, c.Len())
	}
	if v := c.At(0); v.Ver != 3 {
		t.Fatalf("sole survivor is v%d, want v3 (head never pruned)", v.Ver)
	}
}

func TestVisibleCols(t *testing.T) {
	v := Version{Cols: []Column{
		{Name: "a"}, {Name: "b", Dropped: true}, {Name: "c"},
	}}
	vis := v.VisibleCols()
	if len(vis) != 2 || vis[0].Name != "a" || vis[1].Name != "c" {
		t.Fatalf("VisibleCols = %+v", vis)
	}
}

func TestChainConcurrent(t *testing.T) {
	c := NewChain(cols("a"))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.At(50)
				_ = c.Latest()
				_ = c.Versions()
			}
		}()
	}
	for ts := uint64(10); ts <= 1000; ts += 10 {
		c.Publish(cols("a", "b"), ts)
		c.Prune(ts - 5)
	}
	close(stop)
	wg.Wait()
	if v := c.Latest(); v.CommitTS != 1000 {
		t.Fatalf("final head stamp %d, want 1000", v.CommitTS)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t1")
	tr.Update("t1", func(p *Progress) { p.Scanned = 10; p.Rewritten = 10; p.Done = true })
	p, ok := tr.Get("t1")
	if !ok || !p.Done || p.Rewritten != 10 {
		t.Fatalf("progress = %+v ok=%v", p, ok)
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", tr.Pending())
	}
	// Re-opening resets Done.
	tr.Begin("t1")
	if tr.Pending() != 1 {
		t.Fatalf("pending after Begin = %d, want 1", tr.Pending())
	}
	tr.Update("t1", func(p *Progress) { p.IdlePasses = 3 })
	p, _ = tr.Get("t1")
	if !p.Stuck() {
		t.Fatal("3 idle passes on a pending table should report stuck")
	}
	if len(tr.Snapshot()) != 1 {
		t.Fatalf("snapshot size %d", len(tr.Snapshot()))
	}
}
