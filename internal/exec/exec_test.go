package exec

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// fixture builds a catalog with two populated tables and an index.
func fixture(t testing.TB) (*catalog.Catalog, *catalog.Table, *catalog.Table) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(0), 4<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 4 << 20})
	users, err := cat.CreateTable("users", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "name", Type: types.StringType},
		{Name: "age", Type: types.IntType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("users", "users_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	orders, err := cat.CreateTable("orders", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "user_id", Type: types.IntType},
		{Name: "total", Type: types.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("orders", "orders_user", []string{"user_id"}, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := users.InsertRow([]types.Value{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("u%d", i)), types.NewInt(int64(20 + i%5)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 60; i++ {
		if _, err := orders.InsertRow([]types.Value{
			types.NewInt(int64(i)), types.NewInt(int64(1 + i%20)), types.NewFloat(float64(i) * 1.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cat, users, orders
}

func runSQL(t testing.TB, cat *catalog.Catalog, mode plan.Mode, query string, params ...types.Value) [][]types.Value {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p := plan.New(cat, mode)
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	rows, err := Collect(n, params)
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return rows
}

func TestSeqScanIterator(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users")
	if len(rows) != 20 {
		t.Errorf("rows: %d", len(rows))
	}
}

func TestIndexScanPointAndRange(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT name FROM users WHERE id = 7")
	if len(rows) != 1 || rows[0][0].Str != "u7" {
		t.Errorf("point: %+v", rows)
	}
	rows = runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users WHERE id > 15 AND id <= 18")
	if len(rows) != 3 {
		t.Errorf("range: %+v", rows)
	}
	// Range with parameters.
	rows = runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users WHERE id >= ? AND id < ?",
		types.NewInt(5), types.NewInt(8))
	if len(rows) != 3 {
		t.Errorf("param range: %+v", rows)
	}
	// Equality with NULL parameter matches nothing (not everything).
	rows = runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users WHERE id = ?", types.Null())
	if len(rows) != 0 {
		t.Errorf("NULL key: %+v", rows)
	}
}

func TestJoinsAgree(t *testing.T) {
	cat, _, _ := fixture(t)
	q := "SELECT u.name, o.total FROM users u, orders o WHERE o.user_id = u.id AND u.id = 3"
	soph := runSQL(t, cat, plan.Sophisticated, q)
	naive := runSQL(t, cat, plan.Naive, q)
	if len(soph) != 3 || len(naive) != 3 {
		t.Fatalf("join rows: %d vs %d", len(soph), len(naive))
	}
	// Cross join via NLJoin fallback.
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT COUNT(*) FROM users u, orders o WHERE u.age > o.total")
	if rows[0][0].Int == 0 {
		t.Error("non-equi join should match something")
	}
}

func TestHashJoinNullKeys(t *testing.T) {
	cat, users, _ := fixture(t)
	// A user with NULL id-like join key via age NULL.
	if _, err := users.InsertRow([]types.Value{types.NewInt(99), types.NewString("null-age"), types.Null()}); err != nil {
		t.Fatal(err)
	}
	// Self-join on age: NULL never matches, even against NULL.
	rows := runSQL(t, cat, plan.Sophisticated,
		"SELECT COUNT(*) FROM users a, users b WHERE a.age = b.age AND a.id = 99")
	if rows[0][0].Int != 0 {
		t.Errorf("NULL join key matched: %+v", rows)
	}
}

func TestAggregateIterator(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated,
		"SELECT age, COUNT(*), MIN(id), MAX(id) FROM users GROUP BY age ORDER BY age")
	if len(rows) != 5 {
		t.Fatalf("groups: %+v", rows)
	}
	var total int64
	for _, r := range rows {
		total += r[1].Int
	}
	if total != 20 {
		t.Errorf("group counts sum to %d", total)
	}
	// AVG over floats.
	rows = runSQL(t, cat, plan.Sophisticated, "SELECT AVG(total) FROM orders")
	want := 1.5 * 61 / 2 // mean of 1.5..90
	if diff := rows[0][0].Float - want; diff > 0.001 || diff < -0.001 {
		t.Errorf("avg: %v want %v", rows[0][0].Float, want)
	}
}

func TestSortStability(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT age, id FROM users ORDER BY age, id DESC")
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int > rows[i][0].Int {
			t.Fatal("primary key order broken")
		}
		if rows[i-1][0].Int == rows[i][0].Int && rows[i-1][1].Int < rows[i][1].Int {
			t.Fatal("secondary DESC order broken")
		}
	}
}

func TestLimitShortCircuits(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users LIMIT 4")
	if len(rows) != 4 {
		t.Errorf("limit: %d", len(rows))
	}
	rows = runSQL(t, cat, plan.Sophisticated, "SELECT id FROM users LIMIT 0")
	if len(rows) != 0 {
		t.Errorf("limit 0: %d", len(rows))
	}
}

func TestDistinctIterator(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT DISTINCT age FROM users")
	if len(rows) != 5 {
		t.Errorf("distinct ages: %d", len(rows))
	}
}

func TestDMLThroughExec(t *testing.T) {
	cat, _, _ := fixture(t)
	p := plan.New(cat, plan.Sophisticated)
	run := func(q string) int64 {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := p.PlanStatement(st)
		if err != nil {
			t.Fatal(err)
		}
		count, err := RunDML(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		return count
	}
	if n := run("INSERT INTO users VALUES (100, 'new', 30)"); n != 1 {
		t.Errorf("insert count: %d", n)
	}
	if n := run("UPDATE users SET age = 31 WHERE id = 100"); n != 1 {
		t.Errorf("update count: %d", n)
	}
	if n := run("DELETE FROM users WHERE id = 100"); n != 1 {
		t.Errorf("delete count: %d", n)
	}
	if n := run("DELETE FROM users WHERE id = 100"); n != 0 {
		t.Errorf("re-delete count: %d", n)
	}
}

// TestHalloweenProblem: an update that moves rows forward through the
// scan must not update them twice.
func TestHalloweenProblem(t *testing.T) {
	cat, _, _ := fixture(t)
	p := plan.New(cat, plan.Sophisticated)
	st, _ := sql.Parse("UPDATE users SET age = age + 100 WHERE age < 200")
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	count, err := RunDML(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Errorf("affected %d", count)
	}
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT COUNT(*) FROM users WHERE age >= 220")
	if rows[0][0].Int != 0 {
		t.Error("rows updated more than once (Halloween problem)")
	}
}

func TestInSubqueryThroughExec(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated,
		"SELECT COUNT(*) FROM orders WHERE user_id IN (SELECT id FROM users WHERE age = 21)")
	if rows[0][0].Int == 0 {
		t.Error("IN subquery matched nothing")
	}
	// Re-execution must re-evaluate the subquery (Reset semantics).
	q := "SELECT COUNT(*) FROM orders WHERE user_id IN (SELECT id FROM users WHERE age = ?)"
	st, _ := sql.Parse(q)
	p := plan.New(cat, plan.Sophisticated)
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Collect(n, []types.Value{types.NewInt(21)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Collect(n, []types.Value{types.NewInt(999)})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0][0].Int == 0 || r2[0][0].Int != 0 {
		t.Errorf("subquery caching across executions: %v then %v", r1[0][0], r2[0][0])
	}
}

func TestLeftJoinThroughExec(t *testing.T) {
	cat, users, _ := fixture(t)
	// A user with no orders.
	if _, err := users.InsertRow([]types.Value{types.NewInt(50), types.NewString("loner"), types.NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	rows := runSQL(t, cat, plan.Sophisticated,
		"SELECT u.id, o.id FROM users u LEFT JOIN orders o ON o.user_id = u.id WHERE u.id = 50")
	if len(rows) != 1 || !rows[0][1].IsNull() {
		t.Errorf("left join: %+v", rows)
	}
}

func TestValuesAndNoFrom(t *testing.T) {
	cat, _, _ := fixture(t)
	rows := runSQL(t, cat, plan.Sophisticated, "SELECT 1 + 2, 'x'")
	if len(rows) != 1 || rows[0][0].Int != 3 || rows[0][1].Str != "x" {
		t.Errorf("no-from select: %+v", rows)
	}
}

func TestErrorPropagation(t *testing.T) {
	cat, _, _ := fixture(t)
	p := plan.New(cat, plan.Sophisticated)
	// Division by zero surfaces as an execution error.
	st, _ := sql.Parse("SELECT 1 / 0 FROM users")
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(n, nil); err == nil {
		t.Error("division by zero should error")
	}
	// RunDML on a SELECT plan is rejected.
	st, _ = sql.Parse("SELECT id FROM users")
	n, _ = p.PlanStatement(st)
	if _, err := RunDML(n, nil); err == nil {
		t.Error("RunDML of a query plan should fail")
	}
}
