// Package exec evaluates physical plans with Volcano-style iterators.
// Concurrency control happens above this layer: the engine acquires the
// table locks a statement needs before running its plan.
package exec

import (
	"fmt"

	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/types"
)

// Context carries per-execution state.
type Context struct {
	Params []types.Value
	// Stats receives executor counters (rows scanned, batches, decode
	// savings); may be nil. Iterators flush into it on Close.
	Stats *Stats
	// Txn, when set, makes scans snapshot-consistent: rows resolve
	// through their version chains for this transaction instead of
	// being read straight off the pages. nil keeps the plain path.
	Txn *mvcc.Txn
}

// Iterator is the operator interface: Open, then Next until (nil, nil),
// then Close. Rows returned by Next are owned by the caller.
//
// Batch-native operators additionally implement BatchIterator (see
// batch.go); asBatch adapts the rest, so a parent can drive either
// interface — but must pick one per execution.
type Iterator interface {
	Open(ctx *Context) error
	Next() ([]types.Value, error)
	Close() error
}

// Build compiles a plan node into an iterator tree and binds IN-subquery
// scalars to this executor.
func Build(n plan.Node) (Iterator, error) { return BuildTx(n, nil) }

// BuildTx is Build binding IN-subquery materialization to tx's
// snapshot, so subqueries see the same version of the database as the
// enclosing statement.
func BuildTx(n plan.Node, tx *mvcc.Txn) (Iterator, error) {
	it, err := build(n)
	if err != nil {
		return nil, err
	}
	bindSubqueries(n, tx)
	return it, nil
}

func build(n plan.Node) (Iterator, error) {
	switch n := n.(type) {
	case *plan.SeqScan:
		return &seqScanIter{node: n}, nil
	case *plan.IndexScan:
		return &indexScanIter{node: n}, nil
	case *plan.Values:
		return &valuesIter{node: n}, nil
	case *plan.Filter:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &filterIter{child: child, cond: n.Cond}, nil
	case *plan.Project:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &projectIter{child: child, exprs: n.Exprs}, nil
	case *plan.HashJoin:
		l, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		return &hashJoinIter{node: n, left: l, right: r,
			leftWidth:  len(n.Left.Schema()),
			rightWidth: len(n.Right.Schema())}, nil
	case *plan.IndexNLJoin:
		outer, err := build(n.Outer)
		if err != nil {
			return nil, err
		}
		return &indexNLJoinIter{node: n, outer: outer}, nil
	case *plan.NLJoin:
		l, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		return &nlJoinIter{node: n, left: l, right: r,
			rightWidth: len(n.Right.Schema())}, nil
	case *plan.HashAggregate:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &hashAggIter{node: n, child: child}, nil
	case *plan.Sort:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &sortIter{node: n, child: child}, nil
	case *plan.Limit:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &limitIter{child: child, n: n.N}, nil
	case *plan.Distinct:
		child, err := build(n.Child)
		if err != nil {
			return nil, err
		}
		return &distinctIter{child: child}, nil
	case *plan.Materialize:
		child, err := build(n.Sub)
		if err != nil {
			return nil, err
		}
		return &materializeIter{child: child}, nil
	}
	// renameNode and other pass-through wrappers.
	if w, ok := n.(interface{ Child() plan.Node }); ok {
		return build(w.Child())
	}
	return nil, fmt.Errorf("exec: no iterator for %T", n)
}

// Collect runs a plan to completion and returns all rows.
func Collect(n plan.Node, params []types.Value) ([][]types.Value, error) {
	return CollectStats(n, params, nil)
}

// CollectStats is Collect feeding executor counters into st (nil ok).
// It drives the plan batch-at-a-time; rows are copied out of volatile
// batch storage into the returned (caller-owned) slice.
func CollectStats(n plan.Node, params []types.Value, st *Stats) ([][]types.Value, error) {
	return CollectTx(n, params, st, nil)
}

// CollectTx is CollectStats under a transaction snapshot (tx nil ok).
func CollectTx(n plan.Node, params []types.Value, st *Stats, tx *mvcc.Txn) ([][]types.Value, error) {
	it, err := BuildTx(n, tx)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Params: params, Stats: st, Txn: tx}
	bit := asBatch(it)
	if err := bit.Open(ctx); err != nil {
		return nil, err
	}
	defer bit.Close()
	retain := volatileRows(bit)
	var out [][]types.Value
	for {
		b, err := bit.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for _, row := range b.Rows {
			if retain {
				row = copyRow(row)
			}
			out = append(out, row)
		}
	}
}

// CollectRowAtATime runs a plan to completion through the row-at-a-time
// Next interface only. It is the equivalence oracle for the batch path
// (batch-vs-row property tests) and the baseline for the batching
// benchmarks; production callers use Collect.
func CollectRowAtATime(n plan.Node, params []types.Value) ([][]types.Value, error) {
	it, err := Build(n)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Params: params}
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	defer it.Close()
	var out [][]types.Value
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// Drain runs a plan to completion, discarding rows, and returns the
// row count. DB.Exec on a SELECT uses it so a result set nobody reads
// is streamed and counted instead of materialized.
func Drain(n plan.Node, params []types.Value) (int64, error) {
	return DrainStats(n, params, nil)
}

// DrainStats is Drain feeding executor counters into st (nil ok).
// Batches are counted and dropped without any copying.
func DrainStats(n plan.Node, params []types.Value, st *Stats) (int64, error) {
	return DrainTx(n, params, st, nil)
}

// DrainTx is DrainStats under a transaction snapshot (tx nil ok).
func DrainTx(n plan.Node, params []types.Value, st *Stats, tx *mvcc.Txn) (int64, error) {
	it, err := BuildTx(n, tx)
	if err != nil {
		return 0, err
	}
	ctx := &Context{Params: params, Stats: st, Txn: tx}
	bit := asBatch(it)
	if err := bit.Open(ctx); err != nil {
		return 0, err
	}
	defer bit.Close()
	var count int64
	for {
		b, err := bit.NextBatch()
		if err != nil {
			return count, err
		}
		if b == nil {
			return count, nil
		}
		count += int64(len(b.Rows))
	}
}

// bindSubqueries installs the Materialize callback on every InSubquery
// scalar in the plan and resets cached sets from prior runs. With a
// transaction, subqueries materialize under its snapshot.
func bindSubqueries(n plan.Node, tx *mvcc.Txn) {
	for _, s := range nodeScalars(n) {
		walkScalar(s, func(sc plan.Scalar) {
			if in, ok := sc.(*plan.InSubquery); ok {
				in.Reset()
				if tx == nil {
					in.Materialize = Collect
				} else {
					in.Materialize = func(p plan.Node, params []types.Value) ([][]types.Value, error) {
						return CollectTx(p, params, nil, tx)
					}
				}
				bindSubqueries(in.Plan, tx)
			}
		})
	}
	for _, c := range n.Children() {
		bindSubqueries(c, tx)
	}
}

// nodeScalars lists the scalar expressions a node evaluates.
func nodeScalars(n plan.Node) []plan.Scalar {
	var out []plan.Scalar
	add := func(ss ...plan.Scalar) {
		for _, s := range ss {
			if s != nil {
				out = append(out, s)
			}
		}
	}
	switch n := n.(type) {
	case *plan.SeqScan:
		add(n.Filter)
	case *plan.IndexScan:
		add(n.Residual)
		add(n.Path.EqPrefix...)
		add(n.Path.Lo, n.Path.Hi)
	case *plan.Filter:
		add(n.Cond)
	case *plan.Project:
		add(n.Exprs...)
	case *plan.HashJoin:
		add(n.LeftKeys...)
		add(n.RightKeys...)
		add(n.Residual)
	case *plan.IndexNLJoin:
		add(n.Residual)
		add(n.Path.EqPrefix...)
		add(n.Path.Lo, n.Path.Hi)
	case *plan.NLJoin:
		add(n.Cond)
	case *plan.HashAggregate:
		add(n.GroupBy...)
		for _, a := range n.Aggs {
			add(a.Arg)
		}
	case *plan.Values:
		for _, row := range n.Rows {
			add(row...)
		}
	case *plan.UpdatePlan:
		add(n.Filter)
		add(n.SetExprs...)
		if n.Path != nil {
			add(n.Path.EqPrefix...)
			add(n.Path.Lo, n.Path.Hi)
		}
	case *plan.DeletePlan:
		add(n.Filter)
		if n.Path != nil {
			add(n.Path.EqPrefix...)
			add(n.Path.Lo, n.Path.Hi)
		}
	case *plan.InsertPlan:
		for _, row := range n.Rows {
			add(row...)
		}
	}
	return out
}

// walkScalar visits s and its operands.
func walkScalar(s plan.Scalar, fn func(plan.Scalar)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *plan.Binary:
		walkScalar(s.L, fn)
		walkScalar(s.R, fn)
	case *plan.Not:
		walkScalar(s.X, fn)
	case *plan.Neg:
		walkScalar(s.X, fn)
	case *plan.IsNull:
		walkScalar(s.X, fn)
	case *plan.InList:
		walkScalar(s.X, fn)
		for _, i := range s.List {
			walkScalar(i, fn)
		}
	case *plan.InSubquery:
		walkScalar(s.X, fn)
	case *plan.Like:
		walkScalar(s.X, fn)
		walkScalar(s.Pattern, fn)
	case *plan.Cast:
		walkScalar(s.X, fn)
	}
}
