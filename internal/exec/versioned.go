// Snapshot-consistent scans. The physical heap and indexes always hold
// the newest version of every row; transactions that must not see
// uncommitted or too-new writes read through the table's version
// chains instead. The split is surgical: a scan skips exactly the RIDs
// that have a chain (the chain, not the page, decides what this
// transaction sees for them) and then enumerates the chained RIDs'
// visible versions separately. Rows without a chain have exactly one
// version, visible to everyone, so the fast path stays byte-identical
// — and a database with no version chains never enters this file.
//
// Index scans get the same treatment, with one extra obligation: a
// chained row's visible version may carry a different key than its
// physical row (or no physical row at all), so each enumerated version
// re-applies the access path's [lo, hi) key range by encoding the
// index key of the visible row and comparing bytes — exactly the
// criterion the B+tree iterator applies to stored keys.
package exec

import (
	"bytes"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// versionedTable reports whether scans of t under ctx must resolve
// row versions. False for autocommit statements with no concurrent
// transactions — the common case — which keeps the plain path intact.
func versionedTable(ctx *Context, t *catalog.Table) bool {
	return ctx != nil && ctx.Txn != nil && t.Vers != nil && t.Vers.HasVersions()
}

// chainSet is the set of RIDs that had a version chain when a
// statement's scan began. A statement must capture it ONCE and use it
// both to skip physical rows and as the domain of its version
// enumeration: the version store's GC runs from concurrently
// committing sessions without the table lock, so a live HasChain
// probe can flip mid-scan — a chain collected between the enumeration
// and the page visit would return the row twice (or, probed in the
// other order, not at all). With one captured set the two halves of
// the scan partition the table exactly, whatever GC does meanwhile:
// a captured RID whose chain has since been collected resolves to its
// heap bytes, which is precisely the version a collectable chain left
// visible to every live snapshot.
type chainSet map[storage.RID]struct{}

func (cs chainSet) has(rid storage.RID) bool {
	_, ok := cs[rid]
	return ok
}

// captureChains snapshots t's chained RIDs: the membership set (the
// scan's skip predicate) and the ordered slice (the enumeration
// domain for VisibleVersions).
func captureChains(t *catalog.Table) (chainSet, []storage.RID) {
	rids := t.Vers.RIDs()
	set := make(chainSet, len(rids))
	for _, rid := range rids {
		set[rid] = struct{}{}
	}
	return set, rids
}

// inKeyRange replicates the B+tree SeekRange criterion lo <= key < hi
// (nil bounds are open) for a key not present in the tree.
func inKeyRange(key, lo, hi []byte) bool {
	if lo != nil && bytes.Compare(key, lo) < 0 {
		return false
	}
	if hi != nil && bytes.Compare(key, hi) >= 0 {
		return false
	}
	return true
}

// extraRec is one chained RID's snapshot-visible record bytes.
type extraRec struct {
	rid storage.RID
	rec []byte
}

// versionedRecs returns the visible bytes of the captured chained RIDs
// of t, in RID order. The bytes are safe to retain until the statement
// ends.
func versionedRecs(ctx *Context, t *catalog.Table, rids []storage.RID) ([]extraRec, error) {
	var out []extraRec
	err := t.VisibleVersions(ctx.Txn, rids, func(rid storage.RID, rec []byte) error {
		out = append(out, extraRec{rid: rid, rec: rec})
		return nil
	})
	return out, err
}

// decodeFull decodes rec into a full row, padded to t's column count.
func decodeFull(t *catalog.Table, rec []byte) ([]types.Value, error) {
	row, err := types.DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	for len(row) < len(t.Columns) {
		row = append(row, types.Null())
	}
	return row, nil
}

// versionedRowsInRange returns the decoded visible version of every
// captured chained RID whose index key falls in [lo, hi) under path's
// index.
func versionedRowsInRange(ctx *Context, t *catalog.Table, path *plan.AccessPath, lo, hi []byte, rids []storage.RID) ([][]types.Value, error) {
	var out [][]types.Value
	err := t.VisibleVersions(ctx.Txn, rids, func(rid storage.RID, rec []byte) error {
		row, err := decodeFull(t, rec)
		if err != nil {
			return err
		}
		if inKeyRange(path.Index.KeyFor(row, rid), lo, hi) {
			out = append(out, row)
		}
		return nil
	})
	return out, err
}
