package exec

import (
	"sync/atomic"

	"repro/internal/types"
)

// BatchSize is the row count batch producers aim for. Scans batch at
// page granularity instead (one buffer-pool visit decodes a whole
// page), so a batch may hold more or fewer rows; consumers must only
// rely on a batch being non-empty.
const BatchSize = 64

// Batch is the unit of flow between batch-aware operators. Rows either
// alias the producer's value arena (scans, projections, hash-join
// output) or are rows the producer received from a row-at-a-time child;
// in both cases they are valid only until the producer's next NextBatch
// call. Consumers that retain rows beyond that must copy them
// (copyRow); sharing the Values themselves is safe — strings are
// immutable Go strings.
type Batch struct {
	Rows [][]types.Value

	// arena backs the rows of producers that materialize values. Rows
	// are carved off its tail; when a chunk fills, a fresh one is
	// started and already-carved rows keep the old chunk alive, so
	// carved slices are never invalidated mid-batch.
	arena []types.Value
}

// reset recycles the batch for the producer's next fill. Previously
// returned rows become invalid (their storage is about to be reused).
func (b *Batch) reset() {
	b.Rows = b.Rows[:0]
	if b.arena != nil {
		b.arena = b.arena[:0]
	}
}

// alloc carves a width-value row off the arena tail. Arena chunks are
// reused across batches, so the returned slice holds stale values: the
// caller must write (or explicitly NULL) every position.
func (b *Batch) alloc(width int) []types.Value {
	n := len(b.arena)
	if n+width > cap(b.arena) {
		c := BatchSize * width
		if c < 256 {
			c = 256
		}
		b.arena = make([]types.Value, 0, c)
		n = 0
	}
	b.arena = b.arena[:n+width]
	return b.arena[n : n+width : n+width]
}

// freeLast returns the most recent alloc (of the same width) to the
// arena so a filtered-out row's storage is reused immediately.
func (b *Batch) freeLast(width int) {
	b.arena = b.arena[:len(b.arena)-width]
}

// BatchIterator extends Iterator with a batched pull: NextBatch returns
// a non-empty batch, or nil at end of stream. The batch and its rows
// are owned by the iterator and reused by the next NextBatch call. Use
// either Next or NextBatch on a given iterator for the whole execution,
// not both.
type BatchIterator interface {
	Iterator
	NextBatch() (*Batch, error)
}

// asBatch adapts any iterator to the batch interface. Batch-native
// operators are returned as-is; everything else is wrapped so batch
// consumers can drive a uniform loop.
func asBatch(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &rowBatchAdapter{child: it}
}

// volatileRows reports whether b's batches alias producer-owned storage
// that the next NextBatch call reuses. Adapter batches reference rows
// the child handed over per the Iterator contract (caller-owned), so
// consumers may retain those without copying.
func volatileRows(b BatchIterator) bool {
	_, adapter := b.(*rowBatchAdapter)
	return !adapter
}

// rowBatchAdapter batches a row-at-a-time child.
type rowBatchAdapter struct {
	child Iterator
	b     Batch
}

func (a *rowBatchAdapter) Open(ctx *Context) error      { return a.child.Open(ctx) }
func (a *rowBatchAdapter) Close() error                 { return a.child.Close() }
func (a *rowBatchAdapter) Next() ([]types.Value, error) { return a.child.Next() }

func (a *rowBatchAdapter) NextBatch() (*Batch, error) {
	a.b.reset()
	for len(a.b.Rows) < BatchSize {
		row, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		a.b.Rows = append(a.b.Rows, row)
	}
	if len(a.b.Rows) == 0 {
		return nil, nil
	}
	return &a.b, nil
}

// batchCursor drains a NextBatch source one row at a time for parents
// that speak the row interface. Rows are copied out because Next hands
// ownership to the caller while batch rows are reused.
type batchCursor struct {
	cur *Batch
	i   int
}

func (c *batchCursor) reset() { c.cur, c.i = nil, 0 }

func (c *batchCursor) next(src func() (*Batch, error)) ([]types.Value, error) {
	for c.cur == nil || c.i >= len(c.cur.Rows) {
		b, err := src()
		if err != nil {
			return nil, err
		}
		if b == nil {
			c.cur = nil
			return nil, nil
		}
		c.cur, c.i = b, 0
	}
	row := c.cur.Rows[c.i]
	c.i++
	return copyRow(row), nil
}

// copyRow clones a row out of reused batch storage. Values are shared
// (strings are immutable), only the slice is fresh.
func copyRow(row []types.Value) []types.Value {
	out := make([]types.Value, len(row))
	copy(out, row)
	return out
}

// --- executor counters --------------------------------------------------------

// Stats aggregates executor counters across statements. Iterators
// accumulate locally and flush on Close, so the atomics cost nothing
// per row; safe for concurrent executions sharing one Stats.
type Stats struct {
	rowsScanned   atomic.Int64
	scanBatches   atomic.Int64
	valuesDecoded atomic.Int64
	valuesSkipped atomic.Int64
}

// Counters is a point-in-time snapshot of Stats.
type Counters struct {
	// RowsScanned counts rows produced by base-table access (seq scans,
	// index scans, index-NL-join inner fetches).
	RowsScanned int64
	// ScanBatches counts page/rid batches those accesses materialized.
	ScanBatches int64
	// ValuesDecoded / ValuesSkipped count column values materialized vs
	// skipped by column pruning — the decode savings.
	ValuesDecoded int64
	ValuesSkipped int64
}

// Snapshot returns current counter values.
func (s *Stats) Snapshot() Counters {
	return Counters{
		RowsScanned:   s.rowsScanned.Load(),
		ScanBatches:   s.scanBatches.Load(),
		ValuesDecoded: s.valuesDecoded.Load(),
		ValuesSkipped: s.valuesSkipped.Load(),
	}
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.rowsScanned.Store(0)
	s.scanBatches.Store(0)
	s.valuesDecoded.Store(0)
	s.valuesSkipped.Store(0)
}

// scanCounters is the per-iterator local accumulator.
type scanCounters struct {
	rows, batches, decoded, skipped int64
}

// flush adds the local counts to the execution's Stats (nil-safe) and
// zeroes them so Close is idempotent.
func (c *scanCounters) flush(ctx *Context) {
	if ctx == nil || ctx.Stats == nil {
		*c = scanCounters{}
		return
	}
	st := ctx.Stats
	st.rowsScanned.Add(c.rows)
	st.scanBatches.Add(c.batches)
	st.valuesDecoded.Add(c.decoded)
	st.valuesSkipped.Add(c.skipped)
	*c = scanCounters{}
}

// needMask expands a sorted needed-ordinal list into a width-sized
// lookup mask for types.DecodeRowPartial; nil means decode everything.
func needMask(needed []int, width int) []bool {
	if needed == nil {
		return nil
	}
	m := make([]bool, width)
	for _, ord := range needed {
		if ord >= 0 && ord < width {
			m[ord] = true
		}
	}
	return m
}
