package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// RunDML executes an INSERT, UPDATE, or DELETE plan and returns the
// number of rows affected. The caller must already hold the target
// table's write lock.
//
// Statements are atomic: every physical sub-step (heap write, index
// entry) is undo-logged as it applies, and any error replays the log
// in reverse before the write lock is released, so a failed statement
// affects zero rows and leaves the table in its pre-statement state.
func RunDML(n plan.Node, params []types.Value) (int64, error) {
	return RunDMLStats(n, params, nil)
}

// RunDMLStats is RunDML feeding executor counters into st (nil ok).
func RunDMLStats(n plan.Node, params []types.Value, st *Stats) (int64, error) {
	bindSubqueries(n)
	ctx := &Context{Params: params, Stats: st}
	undo := &catalog.UndoLog{}
	var (
		count int64
		err   error
		table *catalog.Table
	)
	switch n := n.(type) {
	case *plan.InsertPlan:
		table = n.Table
		count, err = runInsert(n, ctx, undo)
	case *plan.UpdatePlan:
		table = n.Table
		count, err = runUpdate(n, ctx, undo)
	case *plan.DeletePlan:
		table = n.Table
		count, err = runDelete(n, ctx, undo)
	default:
		return 0, errNotDML(n)
	}
	if err == nil {
		undo.Discard()
		return count, nil
	}
	if rbErr := undo.Rollback(); rbErr != nil {
		return 0, fmt.Errorf("%w (%v; table %s may be inconsistent)", err, rbErr, table.Name)
	}
	return 0, err
}

type notDMLError struct{ n plan.Node }

func (e notDMLError) Error() string { return "exec: not a DML plan: " + e.n.Label() }

func errNotDML(n plan.Node) error { return notDMLError{n} }

func runInsert(p *plan.InsertPlan, ctx *Context, undo *catalog.UndoLog) (int64, error) {
	var count int64
	for _, exprs := range p.Rows {
		row := make([]types.Value, len(p.Table.Columns))
		for i, e := range exprs {
			v, err := e.Eval(nil, ctx.Params)
			if err != nil {
				return count, err
			}
			row[p.ColMap[i]] = v
		}
		if _, err := p.Table.InsertRowUndo(row, undo); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func runUpdate(p *plan.UpdatePlan, ctx *Context, undo *catalog.UndoLog) (int64, error) {
	rids, rows, err := gatherMatches(p.Table, p.Path, p.Filter, ctx)
	if err != nil {
		return 0, err
	}
	// Evaluate every SET expression against the pre-statement rows
	// before mutating anything, then apply the batch with unique checks
	// deferred: UPDATE t SET k = k+1 must not depend on scan order.
	newRows := make([][]types.Value, len(rids))
	for i := range rids {
		oldRow := rows[i]
		newRow := append([]types.Value(nil), oldRow...)
		for j, col := range p.SetCols {
			v, err := p.SetExprs[j].Eval(oldRow, ctx.Params)
			if err != nil {
				return 0, err
			}
			newRow[col] = v
		}
		newRows[i] = newRow
	}
	if _, err := p.Table.UpdateRowsDeferred(rids, rows, newRows, undo); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

func runDelete(p *plan.DeletePlan, ctx *Context, undo *catalog.UndoLog) (int64, error) {
	rids, rows, err := gatherMatches(p.Table, p.Path, p.Filter, ctx)
	if err != nil {
		return 0, err
	}
	var count int64
	for i, rid := range rids {
		if err := p.Table.DeleteRowUndo(rid, rows[i], undo); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// gatherMatches scans via the access path (or sequentially) and buffers
// every (rid, row) whose filter evaluates to TRUE. Rows are decoded in
// full (no column pruning: SET expressions, index maintenance, and undo
// all need complete rows) into a reused scratch buffer; only matching
// rows are copied out, so rows the filter rejects cost no allocation.
func gatherMatches(t *catalog.Table, path *plan.AccessPath, filter plan.Scalar, ctx *Context) ([]storage.RID, [][]types.Value, error) {
	var rids []storage.RID
	var rows [][]types.Value
	var scratch []types.Value
	keep := func(rid storage.RID, row []types.Value) error {
		if filter != nil {
			v, err := filter.Eval(row, ctx.Params)
			if err != nil {
				return err
			}
			if !plan.IsTrue(v) {
				return nil
			}
		}
		rids = append(rids, rid)
		rows = append(rows, copyRow(row))
		return nil
	}
	if path != nil {
		lo, hi, ok, err := indexKeys(path, nil, ctx.Params)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return nil, nil, nil
		}
		it, err := path.Index.Tree.SeekRange(lo, hi)
		if err != nil {
			return nil, nil, err
		}
		for ; it.Valid(); it.Next() {
			rid := it.RID()
			row, _, _, err := t.GetRowInto(scratch, rid, nil)
			if err != nil {
				return nil, nil, err
			}
			scratch = row
			if err := keep(rid, row); err != nil {
				return nil, nil, err
			}
		}
		if err := it.Err(); err != nil {
			return nil, nil, err
		}
		return rids, rows, nil
	}
	scanner := t.Heap.Scanner()
	want := len(t.Columns)
	for {
		rid, rec, ok, err := scanner.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rids, rows, nil
		}
		row, err := types.DecodeRowInto(scratch, rec, want)
		if err != nil {
			return nil, nil, err
		}
		scratch = row
		if err := keep(rid, row); err != nil {
			return nil, nil, err
		}
	}
}
