package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// RollbackFailedError reports a statement whose undo replay itself
// failed: the statement's effects were only partially reverted and the
// table may be inconsistent. Cause is the error that triggered the
// rollback; RB the rollback failure; Failed how many undo steps could
// not be applied. errors.Is/As match Cause through Unwrap.
type RollbackFailedError struct {
	Cause  error
	RB     error
	Table  string
	Failed int
}

func (e *RollbackFailedError) Error() string {
	return fmt.Sprintf("%v (%v; table %s may be inconsistent)", e.Cause, e.RB, e.Table)
}

func (e *RollbackFailedError) Unwrap() error { return e.Cause }

// RunDML executes an INSERT, UPDATE, or DELETE plan and returns the
// number of rows affected. The caller must already hold the target
// table's write lock.
//
// Statements are atomic: every physical sub-step (heap write, index
// entry) is undo-logged as it applies, and any error replays the log
// in reverse before the write lock is released, so a failed statement
// affects zero rows and leaves the table in its pre-statement state.
func RunDML(n plan.Node, params []types.Value) (int64, error) {
	return RunDMLStats(n, params, nil)
}

// RunDMLStats is RunDML feeding executor counters into st (nil ok).
func RunDMLStats(n plan.Node, params []types.Value, st *Stats) (int64, error) {
	undo := &catalog.UndoLog{}
	count, err := RunDMLTx(n, params, st, nil, undo)
	if err == nil {
		undo.Discard()
	}
	return count, err
}

// RunDMLTx executes a DML plan on behalf of a transaction (tx nil for
// autocommit), appending physical undo steps to the caller's undo log.
// On error the statement's own suffix of the log is replayed in
// reverse — entries from earlier statements of the same transaction
// are untouched — so a failed statement affects zero rows while the
// transaction stays usable. On success the statement's entries remain
// in the log for a later full-transaction rollback; the caller owns
// their lifecycle (Discard after an autocommit success).
//
// RunDMLTx runs gather and apply back to back, which is correct under
// a whole-statement exclusive table lock (the autocommit path). The
// session path instead calls PrepareDML under shared latches, runs the
// bounded conflict wait latch-free, and ApplyDML under the exclusive
// latch — same two halves, pulled apart.
func RunDMLTx(n plan.Node, params []types.Value, st *Stats, tx *mvcc.Txn, undo *catalog.UndoLog) (int64, error) {
	pd, err := PrepareDML(n, params, st, tx)
	if err != nil {
		return 0, err
	}
	mark := undo.Mark()
	count, err := ApplyDML(pd, tx, undo)
	if err == nil {
		return count, nil
	}
	if failed, rbErr := undo.RollbackTo(mark); rbErr != nil {
		return 0, &RollbackFailedError{Cause: err, RB: rbErr, Table: pd.table.Name, Failed: failed}
	}
	return 0, err
}

type notDMLError struct{ n plan.Node }

func (e notDMLError) Error() string { return "exec: not a DML plan: " + e.n.Label() }

func errNotDML(n plan.Node) error { return notDMLError{n} }

const (
	verbInsert = iota
	verbUpdate
	verbDelete
)

// PreparedDML is the read-only half of a DML statement: the gathered
// match set and fully evaluated new rows, ready to apply. Between
// Prepare and Apply nothing is mutated, so a prepared statement can be
// dropped at no cost (a conflict discovered by the bounded wait).
type PreparedDML struct {
	table   *catalog.Table
	verb    int
	rows    [][]types.Value // insert: evaluated VALUES rows
	rids    []storage.RID   // update/delete: matched RIDs
	oldRows [][]types.Value // update/delete: matched pre-images
	newRows [][]types.Value // update: evaluated post-images
}

// Table returns the statement's target table.
func (p *PreparedDML) Table() *catalog.Table { return p.table }

// WriteSet returns the RIDs the statement will overwrite — the rows
// the bounded conflict wait must clear. Inserts return nil: a fresh
// slot cannot conflict, and unique-key collisions are detected during
// apply.
func (p *PreparedDML) WriteSet() []storage.RID {
	if p.verb == verbInsert {
		return nil
	}
	return p.rids
}

// PrepareDML evaluates a DML plan without mutating anything: it binds
// subqueries, gathers the snapshot-visible match set, and evaluates
// VALUES/SET expressions against the pre-statement rows. The caller
// must hold at least shared latches on the target table and every
// table the plan reads.
func PrepareDML(n plan.Node, params []types.Value, st *Stats, tx *mvcc.Txn) (*PreparedDML, error) {
	bindSubqueries(n, tx)
	ctx := &Context{Params: params, Stats: st, Txn: tx}
	switch n := n.(type) {
	case *plan.InsertPlan:
		rows := make([][]types.Value, 0, len(n.Rows))
		for _, exprs := range n.Rows {
			row := make([]types.Value, len(n.Table.Columns))
			for i, e := range exprs {
				v, err := e.Eval(nil, ctx.Params)
				if err != nil {
					return nil, err
				}
				row[n.ColMap[i]] = v
			}
			rows = append(rows, row)
		}
		return &PreparedDML{table: n.Table, verb: verbInsert, rows: rows}, nil
	case *plan.UpdatePlan:
		rids, rows, err := gatherMatches(n.Table, n.Path, n.Filter, ctx)
		if err != nil {
			return nil, err
		}
		// Evaluate every SET expression against the pre-statement rows
		// before mutating anything, then apply the batch with unique
		// checks deferred: UPDATE t SET k = k+1 must not depend on scan
		// order.
		newRows := make([][]types.Value, len(rids))
		for i := range rids {
			oldRow := rows[i]
			newRow := append([]types.Value(nil), oldRow...)
			for j, col := range n.SetCols {
				v, err := n.SetExprs[j].Eval(oldRow, ctx.Params)
				if err != nil {
					return nil, err
				}
				newRow[col] = v
			}
			newRows[i] = newRow
		}
		return &PreparedDML{table: n.Table, verb: verbUpdate, rids: rids, oldRows: rows, newRows: newRows}, nil
	case *plan.DeletePlan:
		rids, rows, err := gatherMatches(n.Table, n.Path, n.Filter, ctx)
		if err != nil {
			return nil, err
		}
		return &PreparedDML{table: n.Table, verb: verbDelete, rids: rids, oldRows: rows}, nil
	default:
		return nil, errNotDML(n)
	}
}

// ApplyDML performs a prepared statement's physical writes, appending
// undo steps as they apply. The caller must hold the target table's
// exclusive latch for the whole call and, on error, replay the
// statement's undo suffix before releasing it. The mutators' own
// first-updater-wins checks re-run here, under the latch — they are
// what makes the latch-free wait sound against writers that slip in
// after it returns.
func ApplyDML(pd *PreparedDML, tx *mvcc.Txn, undo *catalog.UndoLog) (int64, error) {
	switch pd.verb {
	case verbInsert:
		var count int64
		for _, row := range pd.rows {
			if _, err := pd.table.InsertRowTxn(tx, row, undo); err != nil {
				return count, err
			}
			count++
		}
		return count, nil
	case verbUpdate:
		if _, err := pd.table.UpdateRowsDeferredTxn(tx, pd.rids, pd.oldRows, pd.newRows, undo); err != nil {
			return 0, err
		}
		return int64(len(pd.rids)), nil
	default:
		var count int64
		for i, rid := range pd.rids {
			if err := pd.table.DeleteRowTxn(tx, rid, pd.oldRows[i], undo); err != nil {
				return count, err
			}
			count++
		}
		return count, nil
	}
}

// gatherMatches scans via the access path (or sequentially) and buffers
// every (rid, row) whose filter evaluates to TRUE. Rows are decoded in
// full (no column pruning: SET expressions, index maintenance, and undo
// all need complete rows) into a reused scratch buffer; only matching
// rows are copied out, so rows the filter rejects cost no allocation.
//
// Under a transaction, matching follows the snapshot: chained rows are
// skipped physically and gathered through their visible versions
// instead. The chained-RID set is captured once up front — skipping on
// a live HasChain while enumerating versions afterwards would let a
// concurrently committing session's GC collect a chain in between,
// silently dropping that row from the match set. A gathered version
// that no longer matches the physical row necessarily has an invisible
// newest writer, so the mutators' first-updater-wins check turns it
// into a conflict before any byte changes; whenever the check passes,
// the visible version and the physical row are identical.
func gatherMatches(t *catalog.Table, path *plan.AccessPath, filter plan.Scalar, ctx *Context) ([]storage.RID, [][]types.Value, error) {
	vers := versionedTable(ctx, t)
	var chains chainSet
	var chainRIDs []storage.RID
	if vers {
		chains, chainRIDs = captureChains(t)
	}
	var rids []storage.RID
	var rows [][]types.Value
	var scratch []types.Value
	keep := func(rid storage.RID, row []types.Value) error {
		if filter != nil {
			v, err := filter.Eval(row, ctx.Params)
			if err != nil {
				return err
			}
			if !plan.IsTrue(v) {
				return nil
			}
		}
		rids = append(rids, rid)
		rows = append(rows, copyRow(row))
		return nil
	}
	if path != nil {
		lo, hi, ok, err := indexKeys(path, nil, ctx.Params)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return nil, nil, nil
		}
		it, err := path.Index.Tree.SeekRange(lo, hi)
		if err != nil {
			return nil, nil, err
		}
		for ; it.Valid(); it.Next() {
			rid := it.RID()
			if vers && chains.has(rid) {
				continue // gathered through the version chain below
			}
			row, _, _, err := t.GetRowInto(scratch, rid, nil)
			if err != nil {
				return nil, nil, err
			}
			scratch = row
			if err := keep(rid, row); err != nil {
				return nil, nil, err
			}
		}
		if err := it.Err(); err != nil {
			return nil, nil, err
		}
		if vers {
			err := t.VisibleVersions(ctx.Txn, chainRIDs, func(rid storage.RID, rec []byte) error {
				row, err := decodeFull(t, rec)
				if err != nil {
					return err
				}
				if !inKeyRange(path.Index.KeyFor(row, rid), lo, hi) {
					return nil
				}
				return keep(rid, row)
			})
			if err != nil {
				return nil, nil, err
			}
		}
		return rids, rows, nil
	}
	scanner := t.Heap.Scanner()
	if vers {
		scanner.SetSkip(chains.has)
	}
	want := len(t.Columns)
	for {
		rid, rec, ok, err := scanner.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		row, err := types.DecodeRowInto(scratch, rec, want)
		if err != nil {
			return nil, nil, err
		}
		scratch = row
		if err := keep(rid, row); err != nil {
			return nil, nil, err
		}
	}
	if vers {
		err := t.VisibleVersions(ctx.Txn, chainRIDs, func(rid storage.RID, rec []byte) error {
			row, err := decodeFull(t, rec)
			if err != nil {
				return err
			}
			return keep(rid, row)
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return rids, rows, nil
}
