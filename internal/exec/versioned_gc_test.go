package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/mvcc"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// versionedFixture builds a catalog wired to an MVCC manager with one
// indexed table of n rows: id dense 1..n unique, val = 10*id.
func versionedFixture(t *testing.T, n int) (*catalog.Catalog, *catalog.Table, *mvcc.Manager) {
	t.Helper()
	mgr := mvcc.NewManager()
	pool := storage.NewBufferPool(storage.NewDisk(0), 4<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 4 << 20, Versions: mgr})
	tab, err := cat.CreateTable("t", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "val", Type: types.IntType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("t", "t_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := tab.InsertRow([]types.Value{
			types.NewInt(int64(i)), types.NewInt(int64(10 * i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cat, tab, mgr
}

// hasNode reports whether the plan tree contains a node with the label.
func hasNode(n plan.Node, label string) bool {
	if n.Label() == label {
		return true
	}
	for _, c := range n.Children() {
		if hasNode(c, label) {
			return true
		}
	}
	return false
}

// runDMLAs plans and runs one DML statement on behalf of tx.
func runDMLAs(t *testing.T, cat *catalog.Catalog, tx *mvcc.Txn, q string) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p, err := plan.New(cat, plan.Sophisticated).PlanStatement(st)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	if _, err := RunDMLTx(p, nil, nil, tx, &catalog.UndoLog{}); err != nil {
		t.Fatalf("dml %q: %v", q, err)
	}
}

// drainAfter opens the plan's iterator under r, runs between (modeling
// work that happens while the scan is mid-flight), then drains.
func drainAfter(t *testing.T, n plan.Node, r *mvcc.Txn, between func()) [][]types.Value {
	t.Helper()
	it, err := BuildTx(n, r)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Txn: r}
	bit := asBatch(it)
	if err := bit.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer bit.Close()
	between()
	retain := volatileRows(bit)
	var out [][]types.Value
	for {
		b, err := bit.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return out
		}
		for _, row := range b.Rows {
			if retain {
				row = copyRow(row)
			}
			out = append(out, row)
		}
	}
}

// TestVersionedScanSurvivesGCMidScan is the regression test for the
// scan/GC race: a statement captured its chained-RID set at Open, and a
// concurrently finishing transaction's GC collects those chains before
// the drain. Skipping on a live HasChain probe instead of the captured
// set would stop skipping the collected RIDs and return their rows
// twice (once physically, once from the versions captured at Open).
// The scenario is deterministic: the GC runs between Open and the
// first NextBatch, the widest possible window.
func TestVersionedScanSurvivesGCMidScan(t *testing.T) {
	cases := []struct {
		name  string
		query string
		label string // access-path node the plan must use
	}{
		{"SeqScan", "SELECT id, val FROM t", "TBSCAN"},
		{"IndexScan", "SELECT id, val FROM t WHERE id >= 1", "IXSCAN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat, tab, mgr := versionedFixture(t, 10)

			// old pins the horizon so the writer's chains outlive its commit.
			old := mgr.Begin()
			w := mgr.Begin()
			runDMLAs(t, cat, w, "UPDATE t SET val = val + 1000 WHERE id >= 3 AND id <= 7")
			w.Commit()
			if !tab.Vers.HasVersions() {
				t.Fatal("expected committed update to leave version chains while old txn is active")
			}

			r := mgr.Begin() // sees w's update (began after its commit)
			defer r.Abort()
			n := planQuery(t, cat, tc.query)
			if !hasNode(n, tc.label) {
				t.Fatalf("plan for %q lacks %s node", tc.query, tc.label)
			}
			rows := drainAfter(t, n, r, func() {
				// Finishing the horizon-pinning txn GCs the chains: every
				// remaining snapshot began after w committed.
				old.Abort()
				if tab.Vers.HasVersions() {
					t.Fatal("expected GC to collect all chains once the old snapshot ended")
				}
			})

			if len(rows) != 10 {
				t.Fatalf("got %d rows, want 10 (duplicates or drops mean the scan raced GC): %v", len(rows), rows)
			}
			seen := make(map[int64]int64, len(rows))
			for _, row := range rows {
				id, val := row[0].Int, row[1].Int
				if _, dup := seen[id]; dup {
					t.Fatalf("row id=%d returned twice", id)
				}
				seen[id] = val
			}
			for id := int64(1); id <= 10; id++ {
				want := 10 * id
				if id >= 3 && id <= 7 {
					want += 1000
				}
				if got, ok := seen[id]; !ok || got != want {
					t.Errorf("id=%d: got val=%d (present=%v), want %d", id, got, ok, want)
				}
			}
		})
	}
}

// TestVersionedScanDeletedRowsAfterGC is the same window with DELETE
// chains: the captured RIDs' heap slots are gone and their chains are
// collected mid-scan, so the version enumeration must treat a dead
// slot with no chain as "row invisible", not as an error.
func TestVersionedScanDeletedRowsAfterGC(t *testing.T) {
	cat, tab, mgr := versionedFixture(t, 10)

	old := mgr.Begin()
	w := mgr.Begin()
	runDMLAs(t, cat, w, "DELETE FROM t WHERE id >= 3 AND id <= 7")
	w.Commit()
	if !tab.Vers.HasVersions() {
		t.Fatal("expected committed delete to leave version chains while old txn is active")
	}

	r := mgr.Begin() // began after the delete committed: sees 5 rows
	defer r.Abort()
	n := planQuery(t, cat, "SELECT id FROM t")
	rows := drainAfter(t, n, r, func() {
		old.Abort()
		if tab.Vers.HasVersions() {
			t.Fatal("expected GC to collect all chains once the old snapshot ended")
		}
	})

	want := map[int64]bool{1: true, 2: true, 8: true, 9: true, 10: true}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %v", len(rows), len(want), rows)
	}
	for _, row := range rows {
		if !want[row[0].Int] {
			t.Errorf("unexpected or duplicate id %d", row[0].Int)
		}
		delete(want, row[0].Int)
	}
}

// TestVersionedScanOlderSnapshotKeepsChains pins the complementary
// invariant: as long as a snapshot that predates the writer is live,
// its scans read the pre-images — GC must not have touched them. This
// is the case the horizon computation exists to protect.
func TestVersionedScanOlderSnapshotKeepsChains(t *testing.T) {
	cat, _, mgr := versionedFixture(t, 10)

	old := mgr.Begin()
	defer old.Abort()
	w := mgr.Begin()
	runDMLAs(t, cat, w, "UPDATE t SET val = 0 WHERE id <= 5")
	w.Commit()

	// A younger reader finishing must not GC chains old still needs.
	young := mgr.Begin()
	young.Commit()

	n := planQuery(t, cat, "SELECT id, val FROM t")
	rows := drainAfter(t, n, old, func() {})
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if want := 10 * row[0].Int; row[1].Int != want {
			t.Errorf("id=%d: old snapshot sees val=%d, want pre-image %d", row[0].Int, row[1].Int, want)
		}
	}
}
