package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// propFixture builds a CRM-shaped catalog (Account ⟵ Opportunity, the
// testbed's parent-child core) with randomized data, returning the pool
// so tests can inject fetch faults mid-scan.
func propFixture(t testing.TB, seed int64) (*storage.BufferPool, *catalog.Catalog) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pool := storage.NewBufferPool(storage.NewDisk(0), 4<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 4 << 20})
	account, err := cat.CreateTable("account", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "name", Type: types.StringType},
		{Name: "industry", Type: types.StringType},
		{Name: "attr01", Type: types.IntType},
		{Name: "attr03", Type: types.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("account", "account_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	opp, err := cat.CreateTable("opportunity", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "account_id", Type: types.IntType},
		{Name: "stage", Type: types.StringType},
		{Name: "quantity", Type: types.IntType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("opportunity", "opportunity_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("opportunity", "opportunity_acct", []string{"account_id"}, false); err != nil {
		t.Fatal(err)
	}
	industries := []string{"health", "auto", "retail", "finance"}
	stages := []string{"prospect", "qualify", "close", "won"}
	nAcct := 80 + r.Intn(120)
	for i := 1; i <= nAcct; i++ {
		ind := types.NewString(industries[r.Intn(len(industries))])
		if r.Intn(12) == 0 {
			ind = types.Null() // NULL group keys exercised too
		}
		if _, err := account.InsertRow([]types.Value{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("account-%d", i)),
			ind,
			types.NewInt(int64(r.Intn(1000))),
			types.NewFloat(r.Float64() * 1000),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3*nAcct; i++ {
		fk := types.NewInt(int64(1 + r.Intn(nAcct+5))) // some dangling FKs
		if r.Intn(15) == 0 {
			fk = types.Null() // NULL join keys never match
		}
		if _, err := opp.InsertRow([]types.Value{
			types.NewInt(int64(i)),
			fk,
			types.NewString(stages[r.Intn(len(stages))]),
			types.NewInt(int64(r.Intn(500))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return pool, cat
}

// propQueries mirrors the testbed's query classes: entity detail pages
// (point lookup), the five business-activity-monitoring aggregates,
// plus DISTINCT, IN-subquery, LEFT JOIN, and ORDER BY shapes.
func propQueries(r *rand.Rand) []struct {
	q      string
	params []types.Value
} {
	return []struct {
		q      string
		params []types.Value
	}{
		{"SELECT * FROM account WHERE id = ?", []types.Value{types.NewInt(int64(1 + r.Intn(150)))}},
		{"SELECT industry, COUNT(*) FROM account GROUP BY industry", nil},
		{"SELECT a.industry, COUNT(*) FROM account a, opportunity o WHERE o.account_id = a.id GROUP BY a.industry", nil},
		{"SELECT COUNT(*), SUM(quantity) FROM opportunity WHERE quantity > ?", []types.Value{types.NewInt(int64(r.Intn(500)))}},
		{"SELECT stage, COUNT(*), SUM(quantity) FROM opportunity GROUP BY stage ORDER BY stage", nil},
		{"SELECT DISTINCT industry FROM account", nil},
		{"SELECT COUNT(*) FROM opportunity WHERE account_id IN (SELECT id FROM account WHERE industry = ?)", []types.Value{types.NewString("health")}},
		{"SELECT a.id, o.id FROM account a LEFT JOIN opportunity o ON o.account_id = a.id", nil},
		{"SELECT industry, id FROM account ORDER BY industry, id DESC", nil},
		{"SELECT name FROM account WHERE id >= ? AND id < ?", []types.Value{types.NewInt(int64(r.Intn(80))), types.NewInt(int64(80 + r.Intn(80)))}},
		{"SELECT name, attr03 FROM account WHERE attr01 > ? ORDER BY name LIMIT 10", []types.Value{types.NewInt(int64(r.Intn(900)))}},
	}
}

func planQuery(t testing.TB, cat *catalog.Catalog, q string) plan.Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	n, err := plan.New(cat, plan.Sophisticated).PlanStatement(st)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return n
}

func renderRows(rows [][]types.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.SQLLiteral() + "|"
		}
		out[i] = s
	}
	return out
}

func sameResults(a, b [][]types.Value) bool {
	ra, rb := renderRows(a), renderRows(b)
	sort.Strings(ra)
	sort.Strings(rb)
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// TestBatchRowEquivalenceProperty runs every query class through the
// batch path (Collect), the row path (CollectRowAtATime), and the row
// path with column pruning disabled, asserting identical result sets
// for randomized data and parameters.
func TestBatchRowEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, cat := propFixture(t, seed)
		r := rand.New(rand.NewSource(seed * 977))
		for trial := 0; trial < 3; trial++ {
			for _, c := range propQueries(r) {
				n := planQuery(t, cat, c.q)
				batch, err := Collect(n, c.params)
				if err != nil {
					t.Fatalf("seed %d batch %q: %v", seed, c.q, err)
				}
				row, err := CollectRowAtATime(n, c.params)
				if err != nil {
					t.Fatalf("seed %d row %q: %v", seed, c.q, err)
				}
				if !sameResults(batch, row) {
					t.Errorf("seed %d %q: batch path %d rows != row path %d rows",
						seed, c.q, len(batch), len(row))
				}
				unpruned := planQuery(t, cat, c.q)
				plan.DisablePruning(unpruned)
				full, err := CollectRowAtATime(unpruned, c.params)
				if err != nil {
					t.Fatalf("seed %d unpruned %q: %v", seed, c.q, err)
				}
				if !sameResults(batch, full) {
					t.Errorf("seed %d %q: pruned results differ from unpruned", seed, c.q)
				}
			}
		}
	}
}

// TestBatchRowFaultEquivalence injects a fetch fault at the kth logical
// page access mid-scan and asserts the batch and row paths fail (or
// succeed past the fault) identically — batching must not change which
// statements an I/O error aborts.
func TestBatchRowFaultEquivalence(t *testing.T) {
	pool, cat := propFixture(t, 42)
	r := rand.New(rand.NewSource(4242))
	for _, c := range propQueries(r) {
		for _, cat2 := range []storage.Category{storage.CatData, storage.CatIndex} {
			for _, k := range []int64{1, 2, 5, 12, 40} {
				runPath := func(collect func(plan.Node, []types.Value) ([][]types.Value, error)) ([][]types.Value, error) {
					pool.SetFetchFault(storage.FailNthFetch(k, cat2))
					defer pool.SetFetchFault(nil)
					return collect(planQuery(t, cat, c.q), c.params)
				}
				batch, berr := runPath(func(n plan.Node, p []types.Value) ([][]types.Value, error) {
					return Collect(n, p)
				})
				row, rerr := runPath(CollectRowAtATime)
				if (berr != nil) != (rerr != nil) {
					t.Fatalf("%q cat=%v k=%d: batch err %v, row err %v", c.q, cat2, k, berr, rerr)
				}
				if berr != nil {
					if !errors.Is(berr, storage.ErrInjectedFault) || !errors.Is(rerr, storage.ErrInjectedFault) {
						t.Fatalf("%q cat=%v k=%d: unexpected errors %v / %v", c.q, cat2, k, berr, rerr)
					}
					continue
				}
				if !sameResults(batch, row) {
					t.Errorf("%q cat=%v k=%d: results diverge", c.q, cat2, k)
				}
			}
		}
	}
}

// TestPrunedFilterAndJoinColumnsStillApply executes queries whose
// filter / join columns never appear in the SELECT list: pruning must
// decode them for predicate evaluation anyway, so the predicates keep
// filtering correctly.
func TestPrunedFilterAndJoinColumnsStillApply(t *testing.T) {
	_, cat := propFixture(t, 11)
	// Filter column (industry) not selected: result must match the count
	// computed by an unpruned plan.
	q := "SELECT id FROM account WHERE industry = 'health'"
	n := planQuery(t, cat, q)
	pruned, err := Collect(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	unpruned := planQuery(t, cat, q)
	plan.DisablePruning(unpruned)
	full, err := Collect(unpruned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) == 0 || !sameResults(pruned, full) {
		t.Errorf("filter on pruned column: %d pruned vs %d unpruned rows", len(pruned), len(full))
	}
	// Join key (o.account_id) not selected on either side.
	q = "SELECT a.name, o.stage FROM account a, opportunity o WHERE o.account_id = a.id"
	n = planQuery(t, cat, q)
	joined, err := Collect(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	unpruned = planQuery(t, cat, q)
	plan.DisablePruning(unpruned)
	fullJoin, err := Collect(unpruned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) == 0 || !sameResults(joined, fullJoin) {
		t.Errorf("join on pruned key: %d pruned vs %d unpruned rows", len(joined), len(fullJoin))
	}
}

// TestCollectStatsCounters sanity-checks the executor counters: a
// pruned scan must report decode savings, and counters must accumulate
// rows and batches.
func TestCollectStatsCounters(t *testing.T) {
	_, cat := propFixture(t, 7)
	var st Stats
	n := planQuery(t, cat, "SELECT id FROM account")
	rows, err := CollectStats(n, nil, &st)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Snapshot()
	if c.RowsScanned != int64(len(rows)) {
		t.Errorf("RowsScanned = %d, want %d", c.RowsScanned, len(rows))
	}
	if c.ScanBatches == 0 {
		t.Error("ScanBatches = 0, want > 0")
	}
	// account has 5 columns, the query needs 1: most values skip decode.
	if c.ValuesSkipped <= c.ValuesDecoded {
		t.Errorf("ValuesSkipped = %d not > ValuesDecoded = %d", c.ValuesSkipped, c.ValuesDecoded)
	}
	if c.ValuesDecoded != int64(len(rows)) {
		t.Errorf("ValuesDecoded = %d, want %d (one column per row)", c.ValuesDecoded, len(rows))
	}
}
