package exec

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// --- scans -------------------------------------------------------------------

// seqScanIter is batch-native: each NextBatch decodes every live record
// of one heap page — fetched in a single buffer-pool visit — straight
// into the batch's value arena, materializing only the columns the plan
// needs and evaluating the pushed-down filter in place. The row
// interface drains those batches through a cursor.
type seqScanIter struct {
	node   *plan.SeqScan
	ctx    *Context
	scan   *storage.HeapScanner
	want   int
	need   []bool
	extras []extraRec // snapshot-visible versions of chained rows
	b      Batch
	cur    batchCursor
	cnt    scanCounters
}

func (it *seqScanIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.scan = it.node.Table.Heap.Scanner()
	it.want = len(it.node.Table.Columns)
	it.need = needMask(it.node.Needed, it.want)
	it.extras = nil
	if versionedTable(ctx, it.node.Table) {
		// Captured once: the same RID set is skipped physically and
		// served from the chains, so concurrent GC cannot hand a row to
		// both halves of the scan (or neither).
		set, rids := captureChains(it.node.Table)
		it.scan.SetSkip(set.has)
		var err error
		it.extras, err = versionedRecs(ctx, it.node.Table, rids)
		if err != nil {
			return err
		}
	}
	it.cur.reset()
	return nil
}

func (it *seqScanIter) NextBatch() (*Batch, error) {
	for {
		_, recs, ok, err := it.scan.NextPage()
		if err != nil {
			return nil, err
		}
		if !ok {
			// Chained rows scan through their version chains instead of
			// the pages; their visible versions form the final batch(es).
			if len(it.extras) == 0 {
				return nil, nil
			}
			n := len(it.extras)
			if n > BatchSize {
				n = BatchSize
			}
			recs = recs[:0]
			for _, e := range it.extras[:n] {
				recs = append(recs, e.rec)
			}
			it.extras = it.extras[n:]
		}
		it.cnt.batches++
		it.b.reset()
		for _, rec := range recs {
			row := it.b.alloc(it.want)
			row, dec, skip, err := types.DecodeRowPartial(row, rec, it.need, it.want)
			if err != nil {
				return nil, err
			}
			it.cnt.decoded += int64(dec)
			it.cnt.skipped += int64(skip)
			if it.node.Filter != nil {
				v, err := it.node.Filter.Eval(row, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					it.b.freeLast(it.want)
					continue
				}
			}
			it.b.Rows = append(it.b.Rows, row)
		}
		if len(it.b.Rows) > 0 {
			it.cnt.rows += int64(len(it.b.Rows))
			return &it.b, nil
		}
	}
}

func (it *seqScanIter) Next() ([]types.Value, error) { return it.cur.next(it.NextBatch) }

func (it *seqScanIter) Close() error {
	it.cnt.flush(it.ctx)
	return nil
}

// indexKeys computes the [lo, hi) key range for an access path given
// the row the path's scalars are evaluated against (nil for constants).
// ok=false means the range is provably empty (an equality on NULL).
func indexKeys(path *plan.AccessPath, row, params []types.Value) (lo, hi []byte, ok bool, err error) {
	prefix := make([]byte, 0, 64)
	for _, e := range path.EqPrefix {
		v, err := e.Eval(row, params)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, false, nil // col = NULL matches nothing
		}
		prefix = types.EncodeKey(prefix, v)
	}
	lo = prefix
	hi = btree.PrefixSuccessor(prefix)
	if path.Lo != nil {
		v, err := path.Lo.Eval(row, params)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, false, nil
		}
		bound := types.EncodeKey(append([]byte(nil), prefix...), v)
		if path.LoInc {
			lo = bound
		} else {
			lo = btree.PrefixSuccessor(bound)
		}
	}
	if path.Hi != nil {
		v, err := path.Hi.Eval(row, params)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, false, nil
		}
		bound := types.EncodeKey(append([]byte(nil), prefix...), v)
		if path.HiInc {
			hi = btree.PrefixSuccessor(bound)
		} else {
			hi = bound
		}
	}
	if len(prefix) == 0 && path.Lo == nil && path.Hi == nil {
		lo, hi = nil, nil
	}
	return lo, hi, true, nil
}

// indexScanIter is batch-native: NextBatch gathers up to BatchSize RIDs
// from the B+tree, then FETCHes each heap row with a partial decode
// (only the plan's needed columns) into the batch arena while the row's
// page is pinned — no intermediate record copy.
type indexScanIter struct {
	node   *plan.IndexScan
	ctx    *Context
	it     *btree.Iterator
	done   bool
	vers   bool
	chains chainSet        // chained RIDs captured at Open
	extras [][]types.Value // visible versions of chained rows in range
	ei     int
	want   int
	need   []bool
	rids   []storage.RID
	b      Batch
	cur    batchCursor
	cnt    scanCounters
}

func (it *indexScanIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.done = false
	it.want = len(it.node.Table.Columns)
	it.need = needMask(it.node.Needed, it.want)
	it.extras, it.ei = nil, 0
	it.cur.reset()
	lo, hi, ok, err := indexKeys(&it.node.Path, nil, ctx.Params)
	if err != nil {
		return err
	}
	if !ok {
		it.done = true
		return nil
	}
	it.vers = versionedTable(ctx, it.node.Table)
	it.chains = nil
	if it.vers {
		// A chained row's visible version may carry a different key than
		// its index entries, so the index is bypassed for those rows:
		// every visible version is checked against [lo, hi) directly.
		// The chained-RID set is captured once so concurrent GC cannot
		// flip a RID back to the physical path after its version was
		// already gathered here.
		var rids []storage.RID
		it.chains, rids = captureChains(it.node.Table)
		it.extras, err = versionedRowsInRange(ctx, it.node.Table, &it.node.Path, lo, hi, rids)
		if err != nil {
			return err
		}
	}
	it.it, err = it.node.Path.Index.Tree.SeekRange(lo, hi)
	return err
}

// extrasBatch emits the residual-surviving version rows as batches.
func (it *indexScanIter) extrasBatch() (*Batch, error) {
	for it.ei < len(it.extras) {
		it.cnt.batches++
		it.b.reset()
		for it.ei < len(it.extras) && len(it.b.Rows) < BatchSize {
			row := it.extras[it.ei]
			it.ei++
			if it.node.Residual != nil {
				v, err := it.node.Residual.Eval(row, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					continue
				}
			}
			it.b.Rows = append(it.b.Rows, row)
		}
		if len(it.b.Rows) > 0 {
			it.cnt.rows += int64(len(it.b.Rows))
			return &it.b, nil
		}
	}
	return nil, nil
}

func (it *indexScanIter) NextBatch() (*Batch, error) {
	if it.done {
		return nil, nil
	}
	for {
		it.rids = it.rids[:0]
		for len(it.rids) < BatchSize && it.it.Valid() {
			rid := it.it.RID()
			it.it.Next()
			if it.vers && it.chains.has(rid) {
				continue // resolved through the version chain instead
			}
			it.rids = append(it.rids, rid)
		}
		if len(it.rids) == 0 {
			if err := it.it.Err(); err != nil {
				return nil, err
			}
			b, err := it.extrasBatch()
			if err != nil || b != nil {
				return b, err
			}
			it.done = true
			return nil, nil
		}
		it.cnt.batches++
		it.b.reset()
		for _, rid := range it.rids {
			row := it.b.alloc(it.want)
			row, dec, skip, err := it.node.Table.GetRowInto(row, rid, it.need)
			if err != nil {
				return nil, err
			}
			it.cnt.decoded += int64(dec)
			it.cnt.skipped += int64(skip)
			if it.node.Residual != nil {
				v, err := it.node.Residual.Eval(row, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					it.b.freeLast(it.want)
					continue
				}
			}
			it.b.Rows = append(it.b.Rows, row)
		}
		if len(it.b.Rows) > 0 {
			it.cnt.rows += int64(len(it.b.Rows))
			return &it.b, nil
		}
	}
}

func (it *indexScanIter) Next() ([]types.Value, error) { return it.cur.next(it.NextBatch) }

func (it *indexScanIter) Close() error {
	it.cnt.flush(it.ctx)
	return nil
}

type valuesIter struct {
	node *plan.Values
	ctx  *Context
	i    int
}

func (it *valuesIter) Open(ctx *Context) error { it.ctx = ctx; it.i = 0; return nil }

func (it *valuesIter) Next() ([]types.Value, error) {
	if it.i >= len(it.node.Rows) {
		return nil, nil
	}
	exprs := it.node.Rows[it.i]
	it.i++
	row := make([]types.Value, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(nil, it.ctx.Params)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func (it *valuesIter) Close() error { return nil }

// --- filter / project ---------------------------------------------------------

// filterIter is batch-native: NextBatch compacts the child's batch in
// place (the rows survive untouched; only the Rows index shrinks, and
// the child rebuilds it on its next fill anyway). The row interface
// keeps the original pass-through semantics so row-path parents still
// receive rows with the child's ownership.
type filterIter struct {
	child  Iterator
	bchild BatchIterator
	cond   plan.Scalar
	ctx    *Context
}

func (it *filterIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.bchild = nil
	return it.child.Open(ctx)
}

func (it *filterIter) Next() ([]types.Value, error) {
	for {
		row, err := it.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := it.cond.Eval(row, it.ctx.Params)
		if err != nil {
			return nil, err
		}
		if plan.IsTrue(v) {
			return row, nil
		}
	}
}

func (it *filterIter) NextBatch() (*Batch, error) {
	if it.bchild == nil {
		it.bchild = asBatch(it.child)
	}
	for {
		b, err := it.bchild.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		keep := b.Rows[:0]
		for _, row := range b.Rows {
			v, err := it.cond.Eval(row, it.ctx.Params)
			if err != nil {
				return nil, err
			}
			if plan.IsTrue(v) {
				keep = append(keep, row)
			}
		}
		b.Rows = keep
		if len(b.Rows) > 0 {
			return b, nil
		}
	}
}

func (it *filterIter) Close() error { return it.child.Close() }

// projectIter is batch-native: NextBatch evaluates the output
// expressions of a whole child batch into its own arena, so projection
// allocates nothing per row.
type projectIter struct {
	child  Iterator
	bchild BatchIterator
	exprs  []plan.Scalar
	ctx    *Context
	b      Batch
}

func (it *projectIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.bchild = nil
	return it.child.Open(ctx)
}

func (it *projectIter) Next() ([]types.Value, error) {
	row, err := it.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]types.Value, len(it.exprs))
	for i, e := range it.exprs {
		v, err := e.Eval(row, it.ctx.Params)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (it *projectIter) NextBatch() (*Batch, error) {
	if it.bchild == nil {
		it.bchild = asBatch(it.child)
	}
	b, err := it.bchild.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	it.b.reset()
	for _, row := range b.Rows {
		out := it.b.alloc(len(it.exprs))
		for i, e := range it.exprs {
			v, err := e.Eval(row, it.ctx.Params)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		it.b.Rows = append(it.b.Rows, out)
	}
	return &it.b, nil
}

func (it *projectIter) Close() error { return it.child.Close() }

// --- joins ---------------------------------------------------------------------

// hashJoinIter builds and probes in batches: the build side is consumed
// via NextBatch (rows copied out of volatile batch storage only when
// needed), and the batch-path probe emits combined rows into its own
// arena, so a probe match allocates nothing. The row interface keeps
// the original per-left-row pending list.
type hashJoinIter struct {
	node       *plan.HashJoin
	left       Iterator
	bleft      BatchIterator
	right      Iterator
	leftWidth  int
	rightWidth int
	ctx        *Context

	table   map[uint64][][]types.Value
	keys    []types.Value
	out     Batch
	pending [][]types.Value // matches for the current left row
	pi      int
}

func (it *hashJoinIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.table = make(map[uint64][][]types.Value)
	it.pending, it.pi = nil, 0
	it.bleft = nil
	it.keys = make([]types.Value, len(it.node.RightKeys))
	bright := asBatch(it.right)
	if err := bright.Open(ctx); err != nil {
		return err
	}
	defer bright.Close()
	// Build rows are retained for the whole probe phase; batch rows
	// from native producers are reused and must be copied out.
	retain := volatileRows(bright)
	for {
		b, err := bright.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows {
			null := false
			for i, k := range it.node.RightKeys {
				v, err := k.Eval(row, ctx.Params)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				it.keys[i] = v
			}
			if null {
				continue // NULL keys never join
			}
			h := types.HashRow(it.keys)
			if retain {
				row = copyRow(row)
			}
			it.table[h] = append(it.table[h], row)
		}
	}
	return it.left.Open(ctx)
}

// probe appends the surviving joined rows for lrow into it.out (one
// arena carve per row, cleared residual rejections reclaimed).
func (it *hashJoinIter) probe(lrow []types.Value) error {
	null := false
	for i, k := range it.node.LeftKeys {
		v, err := k.Eval(lrow, it.ctx.Params)
		if err != nil {
			return err
		}
		if v.IsNull() {
			null = true
			break
		}
		it.keys[i] = v
	}
	width := it.leftWidth + it.rightWidth
	if !null {
		for _, rrow := range it.table[types.HashRow(it.keys)] {
			ok := true
			for i, k := range it.node.RightKeys {
				rv, err := k.Eval(rrow, it.ctx.Params)
				if err != nil {
					return err
				}
				if !types.Equal(it.keys[i], rv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			crow := it.out.alloc(width)
			copy(crow, lrow)
			copy(crow[it.leftWidth:], rrow)
			if it.node.Residual != nil {
				v, err := it.node.Residual.Eval(crow, it.ctx.Params)
				if err != nil {
					return err
				}
				if !plan.IsTrue(v) {
					it.out.freeLast(width)
					continue
				}
			}
			it.out.Rows = append(it.out.Rows, crow)
		}
	}
	return nil
}

func (it *hashJoinIter) NextBatch() (*Batch, error) {
	if it.bleft == nil {
		it.bleft = asBatch(it.left)
	}
	width := it.leftWidth + it.rightWidth
	for {
		lb, err := it.bleft.NextBatch()
		if err != nil {
			return nil, err
		}
		if lb == nil {
			return nil, nil
		}
		it.out.reset()
		for _, lrow := range lb.Rows {
			before := len(it.out.Rows)
			if err := it.probe(lrow); err != nil {
				return nil, err
			}
			// Pad exactly when the row path's pending list would be empty:
			// no match survived the residual.
			if len(it.out.Rows) == before && it.node.Type == sql.LeftJoin {
				crow := it.out.alloc(width)
				copy(crow, lrow)
				for i := it.leftWidth; i < width; i++ {
					crow[i] = types.Value{} // NULL-extend the right half
				}
				it.out.Rows = append(it.out.Rows, crow)
			}
		}
		if len(it.out.Rows) > 0 {
			return &it.out, nil
		}
	}
}

func (it *hashJoinIter) Next() ([]types.Value, error) {
	for {
		if it.pi < len(it.pending) {
			row := it.pending[it.pi]
			it.pi++
			return row, nil
		}
		lrow, err := it.left.Next()
		if err != nil || lrow == nil {
			return nil, err
		}
		it.pending, it.pi = it.pending[:0], 0
		keys := make([]types.Value, len(it.node.LeftKeys))
		null := false
		for i, k := range it.node.LeftKeys {
			v, err := k.Eval(lrow, it.ctx.Params)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			keys[i] = v
		}
		if !null {
			for _, rrow := range it.table[types.HashRow(keys)] {
				ok := true
				for i, k := range it.node.RightKeys {
					rv, err := k.Eval(rrow, it.ctx.Params)
					if err != nil {
						return nil, err
					}
					if !types.Equal(keys[i], rv) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				combined := combine(lrow, rrow)
				if it.node.Residual != nil {
					v, err := it.node.Residual.Eval(combined, it.ctx.Params)
					if err != nil {
						return nil, err
					}
					if !plan.IsTrue(v) {
						continue
					}
				}
				it.pending = append(it.pending, combined)
			}
		}
		if len(it.pending) == 0 && it.node.Type == sql.LeftJoin {
			it.pending = append(it.pending, padRight(lrow, it.rightWidth))
		}
	}
}

func (it *hashJoinIter) Close() error { return it.left.Close() }

func combine(l, r []types.Value) []types.Value {
	out := make([]types.Value, 0, len(l)+len(r))
	return append(append(out, l...), r...)
}

func padRight(l []types.Value, width int) []types.Value {
	out := make([]types.Value, len(l)+width)
	copy(out, l)
	return out
}

type indexNLJoinIter struct {
	node  *plan.IndexNLJoin
	outer Iterator
	ctx   *Context

	cur     []types.Value
	haveRow bool
	inner   *btree.Iterator
	vers    bool
	chains  chainSet        // chained inner RIDs captured per probe
	extras  [][]types.Value // visible versions of chained inner rows in range
	ei      int
	matched bool
	width   int
	need    []bool
	rowbuf  []types.Value // reused inner-fetch decode buffer
	cnt     scanCounters
}

func (it *indexNLJoinIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.cur, it.inner = nil, nil
	it.haveRow = false
	it.extras, it.ei = nil, 0
	it.width = len(it.node.Inner.Columns)
	it.need = needMask(it.node.NeededInner, it.width)
	it.vers = versionedTable(ctx, it.node.Inner)
	return it.outer.Open(ctx)
}

func (it *indexNLJoinIter) Next() ([]types.Value, error) {
	for {
		if !it.haveRow {
			orow, err := it.outer.Next()
			if err != nil || orow == nil {
				return nil, err
			}
			it.cur = orow
			it.matched = false
			lo, hi, ok, err := indexKeys(&it.node.Path, orow, it.ctx.Params)
			if err != nil {
				return nil, err
			}
			if !ok {
				if it.node.Type == sql.LeftJoin { // NULL key: no match possible
					return padRight(orow, it.width), nil
				}
				continue
			}
			it.inner, err = it.node.Path.Index.Tree.SeekRange(lo, hi)
			if err != nil {
				return nil, err
			}
			it.extras, it.ei = nil, 0
			it.chains = nil
			if it.vers {
				// Chained inner rows join through their visible versions,
				// range-checked against [lo, hi) directly (their index
				// entries reflect newer keys, or none). The chained-RID
				// set is captured per probe so concurrent GC cannot serve
				// a row both physically and through its chain.
				var rids []storage.RID
				it.chains, rids = captureChains(it.node.Inner)
				it.extras, err = versionedRowsInRange(it.ctx, it.node.Inner, &it.node.Path, lo, hi, rids)
				if err != nil {
					return nil, err
				}
			}
			it.haveRow = true
		}
		for it.inner != nil && it.inner.Valid() {
			rid := it.inner.RID()
			it.inner.Next()
			if it.vers && it.chains.has(rid) {
				continue // resolved through the version chain instead
			}
			// FETCH with partial decode into a reused buffer; combine()
			// copies the values out, so the buffer is free to be reused.
			irow, dec, skip, err := it.node.Inner.GetRowInto(it.rowbuf, rid, it.need)
			if err != nil {
				return nil, err
			}
			it.rowbuf = irow
			it.cnt.rows++
			it.cnt.decoded += int64(dec)
			it.cnt.skipped += int64(skip)
			combined := combine(it.cur, irow)
			if it.node.Residual != nil {
				v, err := it.node.Residual.Eval(combined, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					continue
				}
			}
			it.matched = true
			return combined, nil
		}
		if it.inner != nil {
			if err := it.inner.Err(); err != nil {
				return nil, err
			}
			it.inner = nil
		}
		for it.ei < len(it.extras) {
			irow := it.extras[it.ei]
			it.ei++
			it.cnt.rows++
			combined := combine(it.cur, irow)
			if it.node.Residual != nil {
				v, err := it.node.Residual.Eval(combined, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					continue
				}
			}
			it.matched = true
			return combined, nil
		}
		it.haveRow = false
		if !it.matched && it.node.Type == sql.LeftJoin {
			return padRight(it.cur, it.width), nil
		}
	}
}

func (it *indexNLJoinIter) Close() error {
	it.cnt.flush(it.ctx)
	return it.outer.Close()
}

type nlJoinIter struct {
	node       *plan.NLJoin
	left       Iterator
	right      Iterator
	rightWidth int
	ctx        *Context

	rightRows [][]types.Value
	cur       []types.Value
	ri        int
	matched   bool
	done      bool
}

func (it *nlJoinIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.rightRows = nil
	it.cur, it.ri, it.done = nil, 0, false
	if err := it.right.Open(ctx); err != nil {
		return err
	}
	defer it.right.Close()
	for {
		row, err := it.right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.rightRows = append(it.rightRows, row)
	}
	return it.left.Open(ctx)
}

func (it *nlJoinIter) Next() ([]types.Value, error) {
	for {
		if it.cur == nil {
			lrow, err := it.left.Next()
			if err != nil || lrow == nil {
				return nil, err
			}
			it.cur, it.ri, it.matched = lrow, 0, false
		}
		for it.ri < len(it.rightRows) {
			rrow := it.rightRows[it.ri]
			it.ri++
			combined := combine(it.cur, rrow)
			if it.node.Cond != nil {
				v, err := it.node.Cond.Eval(combined, it.ctx.Params)
				if err != nil {
					return nil, err
				}
				if !plan.IsTrue(v) {
					continue
				}
			}
			it.matched = true
			return combined, nil
		}
		lrow := it.cur
		it.cur = nil
		if !it.matched && it.node.Type == sql.LeftJoin {
			return padRight(lrow, it.rightWidth), nil
		}
	}
}

func (it *nlJoinIter) Close() error { return it.left.Close() }

// --- aggregation ----------------------------------------------------------------

type aggState struct {
	group  []types.Value
	counts []int64
	sums   []types.Value // running SUM/MIN/MAX per agg
}

type hashAggIter struct {
	node  *plan.HashAggregate
	child Iterator
	ctx   *Context

	groups []*aggState
	gi     int
}

func (it *hashAggIter) Open(ctx *Context) error {
	it.ctx = ctx
	it.groups, it.gi = nil, 0
	// Consume the child in batches: accumulation reads each row once and
	// retains only evaluated group/aggregate values, so volatile batch
	// rows need no copying and a scan→aggregate pipeline runs without
	// per-row allocation.
	bchild := asBatch(it.child)
	if err := bchild.Open(ctx); err != nil {
		return err
	}
	defer bchild.Close()
	byKey := map[uint64][]*aggState{}
	gvals := make([]types.Value, len(it.node.GroupBy))
	for {
		b, err := bchild.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows {
			for i, g := range it.node.GroupBy {
				v, err := g.Eval(row, ctx.Params)
				if err != nil {
					return err
				}
				gvals[i] = v
			}
			h := types.HashRow(gvals)
			var st *aggState
			for _, cand := range byKey[h] {
				same := true
				for i := range gvals {
					if !sameGroupValue(cand.group[i], gvals[i]) {
						same = false
						break
					}
				}
				if same {
					st = cand
					break
				}
			}
			if st == nil {
				st = &aggState{
					group:  copyRow(gvals),
					counts: make([]int64, len(it.node.Aggs)),
					sums:   make([]types.Value, len(it.node.Aggs)),
				}
				for i := range st.sums {
					st.sums[i] = types.Null()
				}
				byKey[h] = append(byKey[h], st)
				it.groups = append(it.groups, st)
			}
			for i, spec := range it.node.Aggs {
				if err := accumulate(st, i, spec, row, ctx.Params); err != nil {
					return err
				}
			}
		}
	}
	// Global aggregation over an empty input still emits one row.
	if len(it.node.GroupBy) == 0 && len(it.groups) == 0 {
		st := &aggState{
			counts: make([]int64, len(it.node.Aggs)),
			sums:   make([]types.Value, len(it.node.Aggs)),
		}
		for i := range st.sums {
			st.sums[i] = types.Null()
		}
		it.groups = append(it.groups, st)
	}
	return nil
}

// sameGroupValue groups NULLs together (SQL GROUP BY semantics).
func sameGroupValue(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return types.Equal(a, b)
}

func accumulate(st *aggState, i int, spec plan.AggSpec, row, params []types.Value) error {
	if spec.Func == plan.AggCountStar {
		st.counts[i]++
		return nil
	}
	v, err := spec.Arg.Eval(row, params)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	st.counts[i]++
	switch spec.Func {
	case plan.AggCount:
	case plan.AggSum, plan.AggAvg:
		if st.sums[i].IsNull() {
			st.sums[i] = v
		} else {
			sum, err := addValues(st.sums[i], v)
			if err != nil {
				return err
			}
			st.sums[i] = sum
		}
	case plan.AggMin:
		if st.sums[i].IsNull() {
			st.sums[i] = v
		} else if c, err := types.Compare(v, st.sums[i]); err != nil {
			return err
		} else if c < 0 {
			st.sums[i] = v
		}
	case plan.AggMax:
		if st.sums[i].IsNull() {
			st.sums[i] = v
		} else if c, err := types.Compare(v, st.sums[i]); err != nil {
			return err
		} else if c > 0 {
			st.sums[i] = v
		}
	}
	return nil
}

func addValues(a, b types.Value) (types.Value, error) {
	if a.Kind == types.KindInt && b.Kind == types.KindInt {
		return types.NewInt(a.Int + b.Int), nil
	}
	af, err := types.Cast(a, types.KindFloat)
	if err != nil {
		return types.Null(), fmt.Errorf("exec: SUM over %s", a.Kind)
	}
	bf, err := types.Cast(b, types.KindFloat)
	if err != nil {
		return types.Null(), fmt.Errorf("exec: SUM over %s", b.Kind)
	}
	return types.NewFloat(af.Float + bf.Float), nil
}

func (it *hashAggIter) Next() ([]types.Value, error) {
	if it.gi >= len(it.groups) {
		return nil, nil
	}
	st := it.groups[it.gi]
	it.gi++
	out := make([]types.Value, 0, len(st.group)+len(it.node.Aggs))
	out = append(out, st.group...)
	for i, spec := range it.node.Aggs {
		switch spec.Func {
		case plan.AggCount, plan.AggCountStar:
			out = append(out, types.NewInt(st.counts[i]))
		case plan.AggSum, plan.AggMin, plan.AggMax:
			out = append(out, st.sums[i])
		case plan.AggAvg:
			if st.counts[i] == 0 {
				out = append(out, types.Null())
			} else {
				f, err := types.Cast(st.sums[i], types.KindFloat)
				if err != nil {
					return nil, err
				}
				out = append(out, types.NewFloat(f.Float/float64(st.counts[i])))
			}
		}
	}
	return out, nil
}

func (it *hashAggIter) Close() error { return nil }

// --- sort / limit / distinct / materialize ----------------------------------------

type sortIter struct {
	node  *plan.Sort
	child Iterator
	rows  [][]types.Value
	i     int
}

func (it *sortIter) Open(ctx *Context) error {
	it.rows, it.i = nil, 0
	if err := it.child.Open(ctx); err != nil {
		return err
	}
	defer it.child.Close()
	for {
		row, err := it.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.rows = append(it.rows, row)
	}
	keys := it.node.Keys
	var sortErr error
	sort.SliceStable(it.rows, func(a, b int) bool {
		for _, k := range keys {
			c, err := types.Compare(it.rows[a][k.Col], it.rows[b][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

func (it *sortIter) Next() ([]types.Value, error) {
	if it.i >= len(it.rows) {
		return nil, nil
	}
	row := it.rows[it.i]
	it.i++
	return row, nil
}

func (it *sortIter) Close() error { return nil }

type limitIter struct {
	child Iterator
	n     int64
	seen  int64
}

func (it *limitIter) Open(ctx *Context) error { it.seen = 0; return it.child.Open(ctx) }

func (it *limitIter) Next() ([]types.Value, error) {
	if it.seen >= it.n {
		return nil, nil
	}
	row, err := it.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	it.seen++
	return row, nil
}

func (it *limitIter) Close() error { return it.child.Close() }

type distinctIter struct {
	child Iterator
	seen  map[uint64][][]types.Value
}

func (it *distinctIter) Open(ctx *Context) error {
	it.seen = make(map[uint64][][]types.Value)
	return it.child.Open(ctx)
}

func (it *distinctIter) Next() ([]types.Value, error) {
	for {
		row, err := it.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		h := types.HashRow(row)
		dup := false
		for _, prev := range it.seen[h] {
			same := true
			for i := range row {
				if !sameGroupValue(prev[i], row[i]) {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		it.seen[h] = append(it.seen[h], row)
		return row, nil
	}
}

func (it *distinctIter) Close() error { return it.child.Close() }

// materializeIter fully evaluates its child at Open — the naive
// optimizer's derived-table behaviour (the paper's Test 1).
type materializeIter struct {
	child Iterator
	rows  [][]types.Value
	i     int
}

func (it *materializeIter) Open(ctx *Context) error {
	it.rows, it.i = nil, 0
	if err := it.child.Open(ctx); err != nil {
		return err
	}
	defer it.child.Close()
	for {
		row, err := it.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		it.rows = append(it.rows, row)
	}
}

func (it *materializeIter) Next() ([]types.Value, error) {
	if it.i >= len(it.rows) {
		return nil, nil
	}
	row := it.rows[it.i]
	it.i++
	return row, nil
}

func (it *materializeIter) Close() error { return nil }
