package repl

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wal"
)

// mustExec fails the test on statement error.
func mustExec(t *testing.T, db *engine.DB, q string, params ...types.Value) {
	t.Helper()
	if _, err := db.Exec(q, params...); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

// intQuery runs a single-row single-int query.
func intQuery(t *testing.T, db *engine.DB, q string) int64 {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("%s: %d rows, want 1", q, len(rows.Data))
	}
	return rows.Data[0][0].Int
}

// seedPrimary builds a primary with one indexed table of n rows.
func seedPrimary(t *testing.T, n int) *engine.DB {
	t.Helper()
	p := engine.Open(engine.Config{})
	mustExec(t, p, "CREATE TABLE acct (k INTEGER NOT NULL, v VARCHAR(40), bal INTEGER)")
	mustExec(t, p, "CREATE UNIQUE INDEX acct_pk ON acct (k)")
	for k := 0; k < n; k++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, ?, 100)",
			types.NewInt(int64(k)), types.NewString(fmt.Sprintf("v-%03d", k)))
	}
	return p
}

func TestBootstrapAndCatchUp(t *testing.T) {
	p := seedPrimary(t, 100)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}
	// The bootstrap image alone must already be complete.
	if got := intQuery(t, f.DB, "SELECT COUNT(*) FROM acct"); got != 100 {
		t.Fatalf("bootstrapped follower has %d rows, want 100", got)
	}
	// Writes after the image arrive by catch-up.
	for k := 100; k < 200; k++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, ?, 100)",
			types.NewInt(int64(k)), types.NewString("late"))
	}
	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	if got := intQuery(t, f.DB, "SELECT COUNT(*) FROM acct"); got != 200 {
		t.Fatalf("follower has %d rows after catch-up, want 200", got)
	}
	if got, want := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"), int64(200*100); got != want {
		t.Fatalf("follower SUM(bal) = %d, want %d", got, want)
	}
	// The follower tracks the primary's durable horizon exactly.
	if fl, pl := f.DB.WAL().DurableLSN(), p.WAL().DurableLSN(); fl != pl {
		t.Fatalf("follower durable LSN %d, primary %d", fl, pl)
	}
}

func TestReplicaRejectsWrites(t *testing.T) {
	p := seedPrimary(t, 5)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DB.Exec("INSERT INTO acct VALUES (9, 'x', 1)"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("autocommit DML on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := f.DB.Exec("CREATE TABLE t2 (a INTEGER)"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("DDL on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := f.DB.Exec("ALTER TABLE acct ADD COLUMN c INTEGER"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("online ALTER on replica: %v, want ErrReadOnlyReplica", err)
	}
	s := f.DB.Session()
	defer s.Close()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatalf("BEGIN on replica: %v (read-only transactions must work)", err)
	}
	if _, err := s.Exec("UPDATE acct SET bal = 0 WHERE k = 1"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("in-txn DML on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := s.Exec("SAVEPOINT sp1"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("SAVEPOINT on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := s.Query("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatalf("SELECT inside replica txn: %v", err)
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatalf("COMMIT of read-only txn on replica: %v", err)
	}
}

// TestSnapshotConsistency ships a transfer workload frame by frame —
// the smallest possible apply granularity — and checks after every
// single frame that a fresh reader sees a balance-preserving state:
// transfers move money between rows, so ANY torn transaction surfaces
// as a wrong total.
func TestSnapshotConsistency(t *testing.T) {
	const accounts = 8
	const transfers = 60
	p := seedPrimary(t, accounts)
	total := int64(accounts * 100)

	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}

	s := p.Session()
	defer s.Close()
	for i := 0; i < transfers; i++ {
		from, to := i%accounts, (i+3)%accounts
		if from == to {
			continue
		}
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		mustExecSess(t, s, "UPDATE acct SET bal = bal - 7 WHERE k = ?", types.NewInt(int64(from)))
		mustExecSess(t, s, "UPDATE acct SET bal = bal + 7 WHERE k = ?", types.NewInt(int64(to)))
		if _, err := s.Exec("COMMIT"); err != nil {
			t.Fatal(err)
		}
	}

	src := p.WAL()
	steps := 0
	for {
		pos := f.DB.WAL().DurableLSN()
		buf, next, err := src.ReadDurable(pos, 1) // exactly one frame
		if err != nil {
			t.Fatal(err)
		}
		if next == pos {
			break
		}
		if _, err := f.Feed(pos, buf); err != nil {
			t.Fatal(err)
		}
		steps++
		if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != total {
			t.Fatalf("after frame %d (LSN %d): follower SUM(bal) = %d, want %d (torn transaction visible)",
				steps, next, got, total)
		}
	}
	if steps == 0 {
		t.Fatal("no frames shipped")
	}

	// A snapshot pinned mid-stream must stay pinned: open a follower
	// transaction, ship more commits, and re-read under the old snapshot.
	for i := 0; i < 5; i++ {
		mustExec(t, p, "UPDATE acct SET bal = bal + 1000 WHERE k = 0")
	}
	rs := f.DB.Session()
	defer rs.Close()
	if _, err := rs.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	before := queryIntSess(t, rs, "SELECT SUM(bal) FROM acct")
	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	after := queryIntSess(t, rs, "SELECT SUM(bal) FROM acct")
	if before != after {
		t.Fatalf("pinned replica snapshot moved: %d then %d", before, after)
	}
	if _, err := rs.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	// A new reader sees the shipped updates.
	if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != total+5000 {
		t.Fatalf("follower SUM(bal) = %d after catch-up, want %d", got, total+5000)
	}
}

func mustExecSess(t *testing.T, s *engine.Session, q string, params ...types.Value) {
	t.Helper()
	if _, err := s.Exec(q, params...); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

func queryIntSess(t *testing.T, s *engine.Session, q string) int64 {
	t.Helper()
	rows, err := s.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows.Data[0][0].Int
}

// TestDDLMidStream replicates the full DDL vocabulary published after
// the bootstrap image: CREATE TABLE, CREATE INDEX, online ALTERs
// (add/widen/drop), DROP INDEX, DROP TABLE.
func TestDDLMidStream(t *testing.T) {
	p := seedPrimary(t, 10)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}

	mustExec(t, p, "CREATE TABLE ev (a INTEGER NOT NULL, b VARCHAR(20))")
	mustExec(t, p, "CREATE UNIQUE INDEX ev_pk ON ev (a)")
	for i := 0; i < 20; i++ {
		mustExec(t, p, "INSERT INTO ev VALUES (?, ?)", types.NewInt(int64(i)), types.NewString("x"))
	}
	mustExec(t, p, "ALTER TABLE ev ADD COLUMN c INTEGER")
	mustExec(t, p, "INSERT INTO ev VALUES (97, 'y', 7)")
	mustExec(t, p, "ALTER TABLE ev ALTER COLUMN c TYPE FLOAT")
	mustExec(t, p, "ALTER TABLE acct DROP COLUMN v")

	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	if got := intQuery(t, f.DB, "SELECT COUNT(*) FROM ev"); got != 21 {
		t.Fatalf("follower ev count = %d, want 21", got)
	}
	// The added column is readable, with old rows NULL and the typed row
	// present (index point lookup exercises the adopted index).
	rows, err := f.DB.Query("SELECT c FROM ev WHERE a = 97")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Kind == types.KindNull {
		t.Fatalf("follower lost the post-ALTER insert: %+v", rows.Data)
	}
	// The dropped column is gone on the follower too.
	if _, err := f.DB.Query("SELECT v FROM acct"); err == nil {
		t.Fatal("follower still serves dropped column v")
	}

	// Structural teardown replicates as well.
	mustExec(t, p, "DROP INDEX ev_pk ON ev")
	mustExec(t, p, "DROP TABLE ev")
	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DB.Query("SELECT COUNT(*) FROM ev"); err == nil {
		t.Fatal("follower still serves dropped table ev")
	}
}

// TestRefeedIdempotent re-ships already-applied history (the
// re-subscribe overlap) and verifies nothing changes, then checks the
// gap guard.
func TestRefeedIdempotent(t *testing.T) {
	p := seedPrimary(t, 50)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, p, "UPDATE acct SET bal = bal + 1 WHERE k < 25")
	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	want := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct")

	// Re-feed the follower's entire retained history.
	base, end := f.DB.WAL().DurableBounds()
	buf, _, err := p.WAL().ReadDurable(base, int(end-base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Feed(base, buf); err != nil {
		t.Fatalf("overlap re-feed: %v", err)
	}
	if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != want {
		t.Fatalf("overlap re-feed changed state: %d -> %d", want, got)
	}

	// A range that skips ahead must be rejected, not torn in.
	if _, err := f.Feed(end+1024, []byte{1, 2, 3}); !errors.Is(err, wal.ErrStreamGap) {
		t.Fatalf("gap feed: %v, want ErrStreamGap", err)
	}
}

// TestFollowerCrashRecovery crashes the follower while the primary has
// an open transaction mid-stream, recovers it, and finishes the stream:
// the open transaction's effects must stay invisible until its commit
// arrives, then become visible.
func TestFollowerCrashRecovery(t *testing.T) {
	p := seedPrimary(t, 10)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}

	// Open a transaction on the primary and force its records durable
	// (a later autocommit write syncs the shared tail).
	s := p.Session()
	defer s.Close()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	mustExecSess(t, s, "UPDATE acct SET bal = bal + 500 WHERE k = 3")
	mustExec(t, p, "UPDATE acct SET bal = bal + 1 WHERE k = 9")

	if _, err := f.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	if n := f.App.OpenTxns(); n != 1 {
		t.Fatalf("follower sees %d open stream transactions, want 1", n)
	}
	if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != 1001 {
		t.Fatalf("follower SUM(bal) = %d, want 1001 (open txn leaked or committed write lost)", got)
	}

	// Crash and recover the follower mid-transaction.
	f2, err := Recover(f.Crash())
	if err != nil {
		t.Fatal(err)
	}
	if n := f2.App.OpenTxns(); n != 1 {
		t.Fatalf("recovered follower sees %d open stream transactions, want 1", n)
	}
	if got := intQuery(t, f2.DB, "SELECT SUM(bal) FROM acct"); got != 1001 {
		t.Fatalf("recovered follower SUM(bal) = %d, want 1001", got)
	}
	if !f2.DB.ReadOnly() {
		t.Fatal("recovered follower lost its write fence")
	}

	// Commit on the primary; the recovered follower applies it.
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.CatchUp(p); err != nil {
		t.Fatal(err)
	}
	if n := f2.App.OpenTxns(); n != 0 {
		t.Fatalf("follower still holds %d open transactions after commit", n)
	}
	if got := intQuery(t, f2.DB, "SELECT SUM(bal) FROM acct"); got != 1501 {
		t.Fatalf("follower SUM(bal) = %d after commit, want 1501", got)
	}
}

// TestCatchUpAfterBacklog lets the primary run far ahead (including
// checkpoints) and verifies a stale follower either catches up or is
// told to re-bootstrap — never silently diverges.
func TestCatchUpAfterBacklog(t *testing.T) {
	p := seedPrimary(t, 20)
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		mustExec(t, p, "UPDATE acct SET bal = bal + 1 WHERE k = ?", types.NewInt(int64(i%20)))
	}
	_, err = f.CatchUp(p)
	if errors.Is(err, wal.ErrTruncatedHistory) {
		// The primary checkpointed past us: re-bootstrap is the contract.
		if f, err = Bootstrap(p); err != nil {
			t.Fatal(err)
		}
	} else if err != nil {
		t.Fatal(err)
	}
	want := intQuery(t, p, "SELECT SUM(bal) FROM acct")
	if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != want {
		t.Fatalf("follower SUM(bal) = %d, primary %d", got, want)
	}
}
