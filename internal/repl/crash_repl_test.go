package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wal"
)

// The replication torture suite. Two sweeps:
//
//   - TestPrimaryCrashSweep kills the PRIMARY at every durability
//     operation of a deterministic workload that ships to a live
//     follower after every statement. After recovery the follower must
//     still be a prefix of the primary's committed history, converge to
//     equality (re-bootstrapping if a checkpoint truncated past it),
//     and tolerate the entire retained history being fed a second time.
//
//   - TestFollowerCrashSweep kills the FOLLOWER after every single
//     applied record of a transfer workload. Recovery must never expose
//     a torn transaction (the money-sum invariant), must keep the write
//     fence up, and must accept both the remaining stream and a full
//     overlapping re-feed.
//
// Between them the sweeps cover well over 300 deterministic crash
// sites; both assert their own floors so a shrinking workload fails
// loudly instead of silently weakening the suite.

// tortureConfig keeps pages and the checkpoint interval tiny so the
// primary sweep crosses many checkpoints — log truncation happens for
// real, which is what forces the follower re-bootstrap path.
func tortureConfig() engine.Config {
	return engine.Config{
		MemoryBytes:     64 << 10,
		PageSize:        1024,
		CheckpointBytes: 4 << 10,
	}
}

// replModel is table -> id -> val; presence of a table is its existence
// in the schema.
type replModel map[string]map[int64]string

func (m replModel) clone() replModel {
	c := make(replModel, len(m))
	for t, rows := range m {
		cr := make(map[int64]string, len(rows))
		for k, v := range rows {
			cr[k] = v
		}
		c[t] = cr
	}
	return c
}

type replStep struct {
	q      string
	params []types.Value
	mut    func(m replModel)
}

// buildReplWorkload is a deterministic single-tenant statement sequence
// over two long-lived tables plus a scratch table's full lifecycle and
// an index build/drop, with modelAt[k] = state after the first k steps.
func buildReplWorkload() (steps []replStep, modelAt []replModel) {
	rng := rand.New(rand.NewSource(7))
	add := func(q string, mut func(m replModel), params ...types.Value) {
		steps = append(steps, replStep{q: q, params: params, mut: mut})
	}

	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("r%d", i)
		add("CREATE TABLE "+name+" (id INT NOT NULL, val TEXT)",
			func(m replModel) { m[name] = map[int64]string{} })
	}
	add("CREATE UNIQUE INDEX r0_pk ON r0 (id)", func(m replModel) {})

	nextID := map[string]int64{}
	for i := 0; i < 96; i++ {
		name := fmt.Sprintf("r%d", i%2)
		switch {
		case i == 20:
			add("CREATE INDEX r1_id ON r1 (id)", func(m replModel) {})
		case i == 70:
			add("DROP INDEX r1_id ON r1", func(m replModel) {})
		case i == 30:
			add("CREATE TABLE scratch (id INT NOT NULL, val TEXT)",
				func(m replModel) { m["scratch"] = map[int64]string{} })
		case i > 30 && i < 60 && i%5 == 0:
			id := nextID["scratch"]
			nextID["scratch"]++
			add("INSERT INTO scratch VALUES (?, ?)",
				func(m replModel) { m["scratch"][id] = "s" },
				types.NewInt(id), types.NewString("s"))
		case i == 60:
			add("DROP TABLE scratch", func(m replModel) { delete(m, "scratch") })
		default:
			switch r := rng.Intn(10); {
			case r < 6:
				id := nextID[name]
				nextID[name]++
				val := fmt.Sprintf("v%d", i)
				add("INSERT INTO "+name+" VALUES (?, ?)",
					func(m replModel) { m[name][id] = val },
					types.NewInt(id), types.NewString(val))
			case r < 8:
				id := int64(rng.Intn(int(nextID[name]) + 1))
				val := fmt.Sprintf("u%d", i)
				add("UPDATE "+name+" SET val = ? WHERE id = ?",
					func(m replModel) {
						if _, ok := m[name][id]; ok {
							m[name][id] = val
						}
					},
					types.NewString(val), types.NewInt(id))
			default:
				id := int64(rng.Intn(int(nextID[name]) + 1))
				add("DELETE FROM "+name+" WHERE id = ?",
					func(m replModel) { delete(m[name], id) },
					types.NewInt(id))
			}
		}
	}

	m := replModel{}
	modelAt = make([]replModel, len(steps)+1)
	modelAt[0] = m.clone()
	for k, s := range steps {
		s.mut(m)
		modelAt[k+1] = m.clone()
	}
	return steps, modelAt
}

// replSnapshot reads every table into model form.
func replSnapshot(t *testing.T, db *engine.DB) replModel {
	t.Helper()
	m := replModel{}
	for _, name := range db.Catalog().TableNames() {
		rows, err := db.Query("SELECT id, val FROM " + name)
		if err != nil {
			t.Fatalf("snapshot %s: %v", name, err)
		}
		rm := map[int64]string{}
		for _, r := range rows.Data {
			rm[r[0].Int] = r[1].Str
		}
		m[name] = rm
	}
	return m
}

// refeedAll ships the primary's entire retained history into the
// follower a second time; a correct applier treats it as a no-op.
func refeedAll(t *testing.T, f *Follower, primary *engine.DB) {
	t.Helper()
	base, end := primary.WAL().DurableBounds()
	if end == base {
		return
	}
	buf, next, err := primary.WAL().ReadDurable(base, int(end-base))
	if err != nil {
		t.Fatalf("re-read retained history: %v", err)
	}
	if next != end {
		t.Fatalf("short history read: %d of %d", next, end)
	}
	if _, err := f.Feed(base, buf); err != nil {
		t.Fatalf("overlapping re-feed: %v", err)
	}
}

func TestPrimaryCrashSweep(t *testing.T) {
	steps, modelAt := buildReplWorkload()
	boundary := func(k int) replModel {
		if k > len(steps) {
			k = len(steps)
		}
		return modelAt[k]
	}

	// The follower deliberately lags: it pulls only every third
	// statement, and every tenth statement the primary flushes its pool
	// and checkpoints — with no dirty page pinning the bound, truncation
	// jumps to the log's end and regularly cuts history out from under
	// the lagging follower, so the re-bootstrap path runs for real.
	// Re-bootstrapping checkpoints the primary (counted ops), but the
	// schedule is deterministic, so every sweep run behaves identically
	// to the counting pass up to its crash site.
	shipNow := func(k int) bool { return k%3 == 2 || k == len(steps)-1 }
	flushNow := func(k int) bool { return k%10 == 9 }

	// Counting pass: bootstrap first (initial image creation is outside
	// the sweep in both passes, keeping the op sequence identical), then
	// run the workload on the shipping schedule.
	count := engine.Open(tortureConfig())
	cf, err := Bootstrap(count)
	if err != nil {
		t.Fatalf("counting bootstrap: %v", err)
	}
	probe := wal.InstallCrashPlan(wal.NeverCrash, count.Disk(), count.WAL())
	countReboots := 0
	for k, s := range steps {
		if _, err := count.Exec(s.q, s.params...); err != nil {
			t.Fatalf("counting pass failed at step %d: %v", k, err)
		}
		if flushNow(k) {
			if err := count.DropCaches(); err != nil {
				t.Fatalf("counting flush at step %d: %v", k, err)
			}
			if err := count.Checkpoint(); err != nil {
				t.Fatalf("counting checkpoint at step %d: %v", k, err)
			}
		}
		if !shipNow(k) {
			continue
		}
		if _, err := cf.CatchUp(count); err != nil {
			if !errors.Is(err, wal.ErrTruncatedHistory) {
				t.Fatalf("counting ship at step %d: %v", k, err)
			}
			if cf, err = Bootstrap(count); err != nil {
				t.Fatalf("counting re-bootstrap at step %d: %v", k, err)
			}
			countReboots++
		}
	}
	if countReboots == 0 {
		t.Fatal("lagging schedule never outran a checkpoint; workload no longer exercises re-bootstrap")
	}
	total := probe.Ops()
	if total < 300 {
		t.Fatalf("workload too small for the sweep: %d crash sites, want >= 300", total)
	}
	t.Logf("sweeping %d primary crash sites over %d statements", total, len(steps))

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	rebootstraps := 0
	for site := int64(1); site <= total; site += stride {
		p := engine.Open(tortureConfig())
		f, err := Bootstrap(p)
		if err != nil {
			t.Fatalf("site %d: bootstrap: %v", site, err)
		}
		plan := wal.InstallCrashPlan(site, p.Disk(), p.WAL())
		pending := len(steps)
		shipped := 0 // steps reflected on the follower
		for k, s := range steps {
			if _, err := p.Exec(s.q, s.params...); err != nil {
				pending = k
				break
			}
			if flushNow(k) {
				// A crash inside the flush or the checkpoint lands after
				// statement k acknowledged; the Fired check below ends
				// the run at that boundary.
				if err := p.DropCaches(); err == nil {
					_ = p.Checkpoint()
				}
			}
			if plan.Fired() {
				pending = k + 1
				break
			}
			if !shipNow(k) {
				continue
			}
			if _, err := f.CatchUp(p); err != nil {
				if !errors.Is(err, wal.ErrTruncatedHistory) {
					t.Fatalf("site %d: ship after step %d: %v", site, k, err)
				}
				nf, err := Bootstrap(p)
				if err != nil {
					// The crash fired inside the re-bootstrap's
					// checkpoint; the primary is down and the follower
					// keeps its last good state.
					pending = k + 1
					break
				}
				f = nf
				rebootstraps++
			}
			shipped = k + 1
		}
		if !plan.Fired() {
			t.Fatalf("site %d: plan never fired (pending=%d)", site, pending)
		}

		// Before the primary comes back, the follower is frozen at the
		// last shipped statement: exactly a prefix boundary of the
		// primary's acknowledged history.
		if got := replSnapshot(t, f.DB); !reflect.DeepEqual(got, modelAt[shipped]) {
			t.Fatalf("site %d: follower not a prefix at shipped step %d:\n got  %v\nwant %v",
				site, shipped, got, modelAt[shipped])
		}

		rec, _, err := engine.Recover(p.Crash())
		if err != nil {
			t.Fatalf("site %d: primary recover: %v", site, err)
		}
		pstate := replSnapshot(t, rec)
		if !reflect.DeepEqual(pstate, modelAt[pending]) &&
			!reflect.DeepEqual(pstate, boundary(pending+1)) {
			t.Fatalf("site %d: primary matches neither boundary of step %d:\n got   %v\nbefore %v\nafter  %v",
				site, pending, pstate, modelAt[pending], boundary(pending+1))
		}

		// Re-subscribe: catch up, or re-bootstrap if a checkpoint
		// truncated the history out from under us.
		if _, err := f.CatchUp(rec); err != nil {
			if !errors.Is(err, wal.ErrTruncatedHistory) {
				t.Fatalf("site %d: converge: %v", site, err)
			}
			if f, err = Bootstrap(rec); err != nil {
				t.Fatalf("site %d: re-bootstrap: %v", site, err)
			}
			rebootstraps++
		}
		fstate := replSnapshot(t, f.DB)
		if !reflect.DeepEqual(fstate, pstate) {
			t.Fatalf("site %d: follower diverged after converge:\n follower %v\n primary  %v",
				site, fstate, pstate)
		}

		// Apply-twice: feeding the whole retained history again must
		// change nothing.
		refeedAll(t, f, rec)
		if again := replSnapshot(t, f.DB); !reflect.DeepEqual(again, fstate) {
			t.Fatalf("site %d: overlapping re-feed changed follower state", site)
		}
	}
	t.Logf("follower re-bootstrapped at %d of the sites (history truncated)", rebootstraps)
	if rebootstraps == 0 && stride == 1 {
		t.Fatal("sweep never exercised the truncated-history re-bootstrap path")
	}
}

func TestFollowerCrashSweep(t *testing.T) {
	// Build the primary once: bootstrap image up front, then a transfer
	// workload whose every commit preserves SUM(bal). The shipped stream
	// is recorded and replayed per crash site, so each site's run is a
	// pure follower-side experiment. Default config: the log must retain
	// the whole stream (no checkpoint truncation behind our back).
	const accounts = 8
	const transfers = 110
	const total = accounts * 1000

	p := engine.Open(engine.Config{})
	mustExec(t, p, "CREATE TABLE acct (k INTEGER NOT NULL, v VARCHAR(40), bal INTEGER)")
	mustExec(t, p, "CREATE UNIQUE INDEX acct_pk ON acct (k)")
	for k := 0; k < accounts; k++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, 'a', 1000)", types.NewInt(int64(k)))
	}
	img, err := p.ReplImage()
	if err != nil {
		t.Fatal(err)
	}
	imgBytes, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	base := img.LogBase + wal.LSN(len(img.Log))

	rng := rand.New(rand.NewSource(11))
	sess := p.Session()
	for i := 0; i < transfers; i++ {
		from := rng.Intn(accounts)
		to := (from + 1 + rng.Intn(accounts-1)) % accounts
		amt := int64(1 + rng.Intn(9))
		if _, err := sess.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec("UPDATE acct SET bal = bal - ? WHERE k = ?",
			types.NewInt(amt), types.NewInt(int64(from))); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec("UPDATE acct SET bal = bal + ? WHERE k = ?",
			types.NewInt(amt), types.NewInt(int64(to))); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec("COMMIT"); err != nil {
			t.Fatal(err)
		}
	}
	sess.Close()
	if got := intQuery(t, p, "SELECT SUM(bal) FROM acct"); got != total {
		t.Fatalf("primary SUM(bal) = %d, want %d", got, total)
	}
	pfinal := replAcctState(t, p)

	stream, next, err := p.WAL().ReadDurable(base, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if next != p.WAL().DurableLSN() {
		t.Fatalf("stream read stopped at %d, durable %d", next, p.WAL().DurableLSN())
	}
	// Split the stream at frame boundaries: [len u32][crc u32][payload].
	var frames [][]byte
	for off := 0; off < len(stream); {
		n := int(binary.LittleEndian.Uint32(stream[off:]))
		frames = append(frames, stream[off:off+8+n])
		off += 8 + n
	}
	if len(frames) < 300 {
		t.Fatalf("workload shipped %d frames, want >= 300 crash sites", len(frames))
	}
	t.Logf("sweeping %d follower crash sites (one per applied record)", len(frames))

	stride := 1
	if testing.Short() {
		stride = 13
	}
	for site := 1; site <= len(frames); site += stride {
		img2, err := engine.DecodeReplImage(imgBytes)
		if err != nil {
			t.Fatalf("site %d: decode image: %v", site, err)
		}
		db, app, err := engine.OpenReplica(img2)
		if err != nil {
			t.Fatalf("site %d: open replica: %v", site, err)
		}
		f := &Follower{DB: db, App: app}
		pos := base
		for i, fr := range frames {
			if _, err := f.Feed(pos, fr); err != nil {
				t.Fatalf("site %d: feed frame %d: %v", site, i, err)
			}
			pos += wal.LSN(len(fr))
			if i+1 == site {
				f2, err := Recover(f.Crash())
				if err != nil {
					t.Fatalf("site %d: follower recover: %v", site, err)
				}
				f = f2
				if !f.DB.ReadOnly() {
					t.Fatalf("site %d: write fence down after recovery", site)
				}
				// No torn transaction: committed money is conserved at
				// every possible crash point, including mid-transfer.
				if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != total {
					t.Fatalf("site %d: SUM(bal) = %d after crash, want %d (torn transaction visible)", site, got, total)
				}
				// Apply-twice: everything held so far, again.
				if _, err := f.Feed(base, stream[:pos-base]); err != nil {
					t.Fatalf("site %d: post-recovery re-feed: %v", site, err)
				}
				if got := intQuery(t, f.DB, "SELECT SUM(bal) FROM acct"); got != total {
					t.Fatalf("site %d: SUM(bal) = %d after re-feed, want %d", site, got, total)
				}
			}
		}
		if n := f.App.OpenTxns(); n != 0 {
			t.Fatalf("site %d: %d open transactions after full stream", site, n)
		}
		if got := replAcctState(t, f.DB); !reflect.DeepEqual(got, pfinal) {
			t.Fatalf("site %d: follower end state diverged:\n follower %v\n primary  %v", site, got, pfinal)
		}
	}
}

// replAcctState reads acct into k -> bal form.
func replAcctState(t *testing.T, db *engine.DB) map[int64]int64 {
	t.Helper()
	rows, err := db.Query("SELECT k, bal FROM acct ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[int64]int64, len(rows.Data))
	for _, r := range rows.Data {
		m[r[0].Int] = r[1].Int
	}
	return m
}
