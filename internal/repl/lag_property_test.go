package repl

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wal"
)

// TestLagConsistencyProperty is the follower's visibility contract,
// checked at every stream position: a reader that observes the replica
// at applied-commit LSN L sees every transaction whose commit LSN is
// <= L and nothing from any later transaction — even while an ALTER
// publishes a new schema mid-stream. The workload is 120 serial
// inserts with a mid-stream ADD COLUMN; T[i] (the primary's durable
// horizon right after insert i's commit) brackets each commit LSN, so
// the exact visible set at any L is computable.
func TestLagConsistencyProperty(t *testing.T) {
	const phase1, phase2 = 60, 60
	const seedBase = 100000 // seed keys live far above workload keys

	p := engine.Open(engine.Config{})
	mustExec(t, p, "CREATE TABLE acct (k INTEGER NOT NULL, v VARCHAR(40), bal INTEGER)")
	mustExec(t, p, "CREATE UNIQUE INDEX acct_pk ON acct (k)")
	for i := 0; i < 10; i++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, 'seed', 0)", types.NewInt(int64(seedBase+i)))
	}
	f, err := Bootstrap(p)
	if err != nil {
		t.Fatal(err)
	}
	base := f.DB.WAL().DurableLSN()

	// Phase 1, ALTER, phase 2 — recording the durable horizon after each
	// insert's commit. No checkpoint fires at this scale (default
	// interval is megabytes), so T[i] is exactly insert i's commit LSN.
	T := make([]wal.LSN, 0, phase1+phase2)
	for i := 0; i < phase1; i++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, 'x', ?)",
			types.NewInt(int64(i)), types.NewInt(int64(i)))
		T = append(T, p.WAL().DurableLSN())
	}
	mustExec(t, p, "ALTER TABLE acct ADD COLUMN extra INTEGER")
	if err := p.WaitBackfill(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := phase1; i < phase1+phase2; i++ {
		mustExec(t, p, "INSERT INTO acct VALUES (?, 'x', ?, ?)",
			types.NewInt(int64(i)), types.NewInt(int64(i)), types.NewInt(int64(i)))
		T = append(T, p.WAL().DurableLSN())
	}

	// The whole shipped stream, split at frame boundaries.
	stream, next, err := p.WAL().ReadDurable(base, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if next != p.WAL().DurableLSN() {
		t.Fatalf("stream read stopped at %d, durable %d", next, p.WAL().DurableLSN())
	}

	countVisible := func(db *engine.DB) (cnt, sum int64) {
		rows, err := db.Query("SELECT COUNT(*), SUM(bal) FROM acct WHERE k >= 0 AND k < ?",
			types.NewInt(seedBase))
		if err != nil {
			t.Fatalf("visibility query: %v", err)
		}
		cnt = rows.Data[0][0].Int
		if rows.Data[0][1].Kind != types.KindNull {
			sum = rows.Data[0][1].Int
		}
		return cnt, sum
	}

	var pinned *engine.Session // opened right before the ALTER applies
	pos := base
	for len(stream) > 0 {
		fr := frameAt(t, stream)
		if _, err := f.Feed(pos, fr); err != nil {
			t.Fatalf("feed at %d: %v", pos, err)
		}
		pos += wal.LSN(len(fr))
		stream = stream[len(fr):]

		// The property: at applied-commit LSN L, exactly the inserts
		// with commit LSN <= L are visible — as a prefix (the sum over
		// bal pins the exact key set, not just the count).
		L := f.App.AppliedCommitLSN()
		want := int64(0)
		for _, ti := range T {
			if ti <= L {
				want++
			}
		}
		cnt, sum := countVisible(f.DB)
		if cnt != want {
			t.Fatalf("at applied-commit LSN %d: %d inserts visible, want %d (every txn <= L, none > L)",
				L, cnt, want)
		}
		if sum != want*(want-1)/2 {
			t.Fatalf("at applied-commit LSN %d: SUM(bal) = %d, want %d — visible set is not the txn prefix",
				L, sum, want*(want-1)/2)
		}

		// Pin a reader at the last pre-ALTER commit.
		if pinned == nil && want == phase1 {
			pinned = f.DB.Session()
			if _, err := pinned.Exec("BEGIN"); err != nil {
				t.Fatal(err)
			}
			if c, _ := sessionCount(t, pinned, seedBase); c != phase1 {
				t.Fatalf("pinned reader opened seeing %d inserts, want %d", c, phase1)
			}
		}
	}
	if pinned == nil {
		t.Fatal("stream never reached the pre-ALTER pin point")
	}

	// End of stream: everything applied. A fresh reader sees both phases
	// and the new column; the pinned reader still sees its snapshot —
	// pre-ALTER row set AND pre-ALTER schema.
	if cnt, _ := countVisible(f.DB); cnt != phase1+phase2 {
		t.Fatalf("fresh reader sees %d inserts after full stream, want %d", cnt, phase1+phase2)
	}
	rows, err := f.DB.Query("SELECT extra FROM acct WHERE k = 70")
	if err != nil {
		t.Fatalf("new column on follower: %v", err)
	}
	if rows.Data[0][0].Kind == types.KindNull || rows.Data[0][0].Int != 70 {
		t.Fatalf("extra(k=70) = %v, want 70", rows.Data[0][0])
	}
	if c, _ := sessionCount(t, pinned, seedBase); c != phase1 {
		t.Fatalf("pinned reader drifted to %d inserts, want %d", c, phase1)
	}
	if _, err := pinned.Query("SELECT extra FROM acct WHERE k = 1"); err == nil {
		t.Fatal("pinned pre-ALTER reader resolved the post-ALTER column")
	}
	if _, err := pinned.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Close(); err != nil {
		t.Fatal(err)
	}
}

// frameAt returns the first whole WAL frame of buf.
func frameAt(t *testing.T, buf []byte) []byte {
	t.Helper()
	if len(buf) < 8 {
		t.Fatalf("torn frame header: %d bytes", len(buf))
	}
	n := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	if len(buf) < 8+n {
		t.Fatalf("torn frame: header says %d payload bytes, have %d", n, len(buf)-8)
	}
	return buf[:8+n]
}

// sessionCount reads the workload-row count inside an open session.
func sessionCount(t *testing.T, s *engine.Session, seedBase int64) (int64, error) {
	t.Helper()
	rows, err := s.Query("SELECT COUNT(*) FROM acct WHERE k >= 0 AND k < ?", types.NewInt(seedBase))
	if err != nil {
		return 0, err
	}
	return rows.Data[0][0].Int, nil
}
