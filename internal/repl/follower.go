// Package repl is WAL-shipping replication glue above the engine: an
// in-process Follower (deterministic transport for tests and the
// torture suite) and a network Replica that subscribes to an mtdserver
// primary over the wire protocol, bootstraps from a shipped snapshot,
// and applies the stream continuously (see replica.go).
//
// The heavy lifting lives below: wal.ReadDurable/IngestDurable keep the
// follower's log a byte-prefix mirror of the primary's stream, and
// engine.Applier replays it into pages, catalogs, and MVCC state so
// follower reads are snapshot-consistent at the last applied commit.
package repl

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Follower is an in-process replica: same machine, no sockets, fed
// either by explicit CatchUp pulls against the primary or by Feed calls
// carrying shipped byte ranges. Tests use it because every transfer is
// an ordinary function call — deterministic, crashable at any site.
type Follower struct {
	// DB is the replica database. Read-only: sessions work, writes are
	// rejected with engine.ErrReadOnlyReplica.
	DB *engine.DB
	// App applies the primary's stream onto DB.
	App *engine.Applier
}

// Bootstrap builds a follower from a primary's replication image
// (checkpoint + retained log), exactly what a network subscriber
// receives as its snapshot.
func Bootstrap(primary *engine.DB) (*Follower, error) {
	img, err := primary.ReplImage()
	if err != nil {
		return nil, err
	}
	db, app, err := engine.OpenReplica(img)
	if err != nil {
		return nil, err
	}
	return &Follower{DB: db, App: app}, nil
}

// chunkBytes is the pull granularity of CatchUp — small enough that a
// big backlog takes many transfers (more crash sites for the torture
// suite), large enough to stay cheap.
const chunkBytes = 64 << 10

// CatchUp pulls the primary's durable log from the follower's horizon
// until none remains, applying as it goes. It returns the number of
// bytes transferred. A follower that fell behind a checkpoint
// truncation gets wal.ErrTruncatedHistory — the caller re-bootstraps.
func (f *Follower) CatchUp(primary *engine.DB) (int, error) {
	src := primary.WAL()
	if src == nil {
		return 0, fmt.Errorf("repl: primary runs without a WAL")
	}
	total := 0
	for {
		pos := f.DB.WAL().DurableLSN()
		buf, next, err := src.ReadDurable(pos, chunkBytes)
		if err != nil {
			return total, err
		}
		if next == pos {
			return total, nil
		}
		if _, err := f.App.Feed(pos, buf); err != nil {
			return total, err
		}
		total += len(buf)
	}
}

// Feed hands one shipped byte range to the applier (the network
// transport's entry point; exposed on Follower for symmetry).
func (f *Follower) Feed(start wal.LSN, buf []byte) (wal.LSN, error) {
	return f.App.Feed(start, buf)
}

// Crash tears the follower down mid-flight (buffer pool dropped, log
// frozen) and returns the crash image Recover restarts from.
func (f *Follower) Crash() *engine.CrashImage {
	return f.DB.Crash()
}

// Recover restarts a crashed follower from its image, preserving
// replica semantics (open primary transactions stay open, write fence
// stays up).
func Recover(img *engine.CrashImage) (*Follower, error) {
	db, app, err := engine.RecoverReplica(img)
	if err != nil {
		return nil, err
	}
	return &Follower{DB: db, App: app}, nil
}
