package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/wal"
)

// ReplicaConfig tells Connect where the primary is and who we are.
type ReplicaConfig struct {
	// Addr is the primary mtdserver's "host:port".
	Addr string
	// Tenant and Token are ordinary handshake credentials (a replica
	// authenticates like any client before subscribing).
	Tenant int64
	Token  string
	// DialTimeout bounds connect + handshake (default 5s).
	DialTimeout time.Duration
	// RetryInterval paces reconnect attempts after the stream drops
	// (default 250ms).
	RetryInterval time.Duration
}

// Replica is a network follower: it subscribes to a primary's WAL
// stream, bootstraps from the shipped snapshot, applies frames as they
// arrive, and acknowledges its applied position. The stream survives
// disconnects — the receive loop reconnects and re-subscribes from the
// replica's own durable horizon, and a primary whose checkpoint outran
// us re-ships a full snapshot, which atomically replaces the local DB.
type Replica struct {
	cfg ReplicaConfig

	mu  sync.Mutex
	db  *engine.DB
	app *engine.Applier

	closed atomic.Bool
	conn   atomic.Pointer[net.TCPConn] // only for unblocking Close

	wg sync.WaitGroup
}

// Connect dials the primary, performs the bootstrap, and starts the
// background apply loop. It returns once the replica holds a complete,
// queryable database.
func Connect(cfg ReplicaConfig) (*Replica, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 250 * time.Millisecond
	}
	r := &Replica{cfg: cfg}
	ready := make(chan error, 1)
	r.wg.Add(1)
	go r.loop(ready)
	if err := <-ready; err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// DB returns the replica database current as of now. After a
// re-bootstrap (snapshot re-ship) this is a NEW object; long-lived
// holders should re-fetch, and sessions on the old object keep reading
// its frozen state.
func (r *Replica) DB() *engine.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// AppliedLSN is the stream position up to which every record is
// applied locally.
func (r *Replica) AppliedLSN() wal.LSN {
	r.mu.Lock()
	app := r.app
	r.mu.Unlock()
	if app == nil {
		return 0
	}
	return app.AppliedLSN()
}

// AppliedCommitLSN is the replica's published, snapshot-consistent
// position: the LSN of the newest applied commit.
func (r *Replica) AppliedCommitLSN() wal.LSN {
	r.mu.Lock()
	app := r.app
	r.mu.Unlock()
	if app == nil {
		return 0
	}
	return app.AppliedCommitLSN()
}

// WaitForLSN blocks until the applied position reaches lsn or the
// timeout expires — the read-your-writes helper: a client that saw the
// primary's durable horizon at L can wait for L here, then read.
func (r *Replica) WaitForLSN(lsn wal.LSN, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for r.AppliedLSN() < lsn {
		if r.closed.Load() {
			return errors.New("repl: replica closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: timed out at applied LSN %d waiting for %d", r.AppliedLSN(), lsn)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Close stops the apply loop and drops the connection. The replica DB
// remains readable at its last applied position.
func (r *Replica) Close() {
	if r.closed.Swap(true) {
		return
	}
	if nc := r.conn.Load(); nc != nil {
		nc.Close()
	}
	r.wg.Wait()
}

// loop owns the stream for the replica's lifetime: dial, subscribe,
// consume, reconnect. The first iteration reports the bootstrap
// outcome on ready — Connect blocks on it — and a failure before the
// first successful bootstrap ends the loop (Connect surfaces the
// error; there is nothing local worth retrying toward).
func (r *Replica) loop(ready chan<- error) {
	defer r.wg.Done()
	bootstrapped := false
	report := func(err error) {
		if !bootstrapped {
			ready <- err
			bootstrapped = err == nil
		}
	}
	for !r.closed.Load() {
		nc, br, err := r.dial()
		if err != nil {
			if !bootstrapped {
				report(err)
				return
			}
			time.Sleep(r.cfg.RetryInterval)
			continue
		}
		err = r.runStream(nc, br, report)
		nc.Close()
		if !bootstrapped {
			if err == nil {
				err = errors.New("repl: stream ended before bootstrap completed")
			}
			report(err)
			return
		}
		if !r.closed.Load() {
			time.Sleep(r.cfg.RetryInterval)
		}
	}
}

// dial opens an authenticated connection and sends the subscription.
// From is the replica's durable horizon (0 on first connect: ship me
// everything, snapshot first).
func (r *Replica) dial() (net.Conn, *bufio.Reader, error) {
	nc, err := net.DialTimeout("tcp", r.cfg.Addr, r.cfg.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		r.conn.Store(tc)
	}
	nc.SetDeadline(time.Now().Add(r.cfg.DialTimeout))
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	if err := protocol.WriteFrame(bw, protocol.Encode(&protocol.Hello{
		Version: protocol.Version,
		Tenant:  r.cfg.Tenant,
		Token:   r.cfg.Token,
	})); err != nil {
		nc.Close()
		return nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return nil, nil, err
	}
	reply, err := readMsg(br)
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	switch m := reply.(type) {
	case *protocol.HelloOK:
	case *protocol.Error:
		nc.Close()
		return nil, nil, m
	default:
		nc.Close()
		return nil, nil, fmt.Errorf("repl: unexpected handshake reply %T", m)
	}
	var from wal.LSN
	r.mu.Lock()
	if r.db != nil {
		from = r.db.WAL().DurableLSN()
	}
	r.mu.Unlock()
	if err := protocol.WriteFrame(bw, protocol.Encode(&protocol.ReplSubscribe{From: uint64(from)})); err != nil {
		nc.Close()
		return nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return nil, nil, err
	}
	nc.SetDeadline(time.Time{})
	return nc, br, nil
}

// runStream consumes one connection's worth of the stream: an optional
// snapshot (first connect, or the primary truncated past us), then
// frames forever. Returns when the connection dies. report is invoked
// with nil once a bootstrap completes.
func (r *Replica) runStream(nc net.Conn, br *bufio.Reader, report func(error)) error {
	bw := bufio.NewWriter(nc)
	var snapshot []byte
	for {
		msg, err := readMsg(br)
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *protocol.ReplSnapshot:
			snapshot = append(snapshot, m.Chunk...)
			if !m.Last {
				continue
			}
			img, err := engine.DecodeReplImage(snapshot)
			if err != nil {
				return err
			}
			snapshot = nil
			db, app, err := engine.OpenReplica(img)
			if err != nil {
				return err
			}
			r.mu.Lock()
			r.db, r.app = db, app
			r.mu.Unlock()
			// Announce the restored position immediately: an idle stream
			// whose history fit entirely inside the image ships no frames,
			// so without this ack the primary's lag telemetry would never
			// learn the follower is current.
			if protocol.WriteFrame(bw, protocol.Encode(&protocol.ReplAck{
				Applied: uint64(app.AppliedLSN()),
			})) == nil {
				bw.Flush()
			}
			report(nil)

		case *protocol.ReplFrames:
			r.mu.Lock()
			app := r.app
			r.mu.Unlock()
			if app == nil {
				return errors.New("repl: frames before snapshot")
			}
			if _, err := app.Feed(wal.LSN(m.Start), m.Frames); err != nil {
				return err
			}
			// Acknowledge the applied position (telemetry; best effort).
			if protocol.WriteFrame(bw, protocol.Encode(&protocol.ReplAck{
				Applied: uint64(app.AppliedLSN()),
			})) == nil {
				bw.Flush()
			}

		case *protocol.Error:
			return m

		default:
			return fmt.Errorf("repl: unexpected stream message %T", msg)
		}
	}
}

// readMsg reads and decodes one protocol frame.
func readMsg(br *bufio.Reader) (any, error) {
	payload, err := protocol.ReadFrame(br)
	if err != nil {
		return nil, err
	}
	return protocol.Decode(payload)
}
