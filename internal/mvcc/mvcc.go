// Package mvcc provides the transaction timestamps and row-version
// bookkeeping behind snapshot-isolation reads and first-updater-wins
// write-conflict detection.
//
// The design deliberately keeps the on-page row format untouched: a
// heap page always holds the *newest* bytes of every row, and an
// in-memory side store (VersionStore, one per table) keeps the chain
// of pre-images that older snapshots still need. A chain exists only
// while some transaction needs it — entries are garbage-collected the
// moment every active snapshot is newer than the writer that created
// them — so a database with no open interactive transactions carries
// zero versioning overhead on the read path.
//
// Timestamps: the Manager keeps a logical clock that ticks once per
// commit. A transaction's snapshot is the clock value at Begin; a
// writer's commit timestamp is the clock value after its tick. A write
// is visible to a reader iff the reader made it, or the writer
// committed at or before the reader's snapshot.
package mvcc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrWriteConflict is returned when first-updater-wins detects that a
// row targeted by a write was already written by a transaction that is
// not visible to the writer (still active, aborted but not yet undone,
// or committed after the writer's snapshot). The losing transaction
// must abort.
var ErrWriteConflict = errors.New("mvcc: write-write conflict")

// abortedWord is the commit-word value marking an aborted transaction.
const abortedWord = ^uint64(0)

// Manager issues transactions and owns the commit clock.
type Manager struct {
	mu     sync.Mutex
	ts     uint64 // last committed timestamp
	nextID uint64
	active map[uint64]*Txn

	dirtyMu sync.Mutex
	dirty   map[*VersionStore]struct{}
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	return &Manager{
		active: make(map[uint64]*Txn),
		dirty:  make(map[*VersionStore]struct{}),
	}
}

// Begin starts a transaction whose snapshot is the current clock.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	tx := &Txn{id: m.nextID, beginTS: m.ts, mgr: m}
	m.active[tx.id] = tx
	return tx
}

// ActiveCount reports how many transactions are begun but not yet
// finished. The engine uses it to fence DDL off from open transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// markDirty records that a store holds version chains so the
// end-of-transaction sweep knows where to collect.
func (m *Manager) markDirty(s *VersionStore) {
	m.dirtyMu.Lock()
	m.dirty[s] = struct{}{}
	m.dirtyMu.Unlock()
}

// finish stamps the transaction terminal (commit tick or aborted),
// deregisters it, and garbage-collects every dirty store against the
// new horizon.
func (m *Manager) finish(tx *Txn, abort bool) {
	m.mu.Lock()
	if abort {
		tx.word.Store(abortedWord)
	} else if tx.word.Load() == 0 {
		m.ts++
		tx.word.Store(m.ts)
	}
	delete(m.active, tx.id)
	// Horizon: the oldest snapshot any remaining transaction holds.
	horizon := m.ts
	for _, a := range m.active {
		if a.beginTS < horizon {
			horizon = a.beginTS
		}
	}
	m.mu.Unlock()

	m.dirtyMu.Lock()
	stores := make([]*VersionStore, 0, len(m.dirty))
	for s := range m.dirty {
		stores = append(stores, s)
	}
	m.dirtyMu.Unlock()
	for _, s := range stores {
		if s.GC(horizon) {
			m.dirtyMu.Lock()
			// Re-check under the lock: a concurrent write may have re-added
			// chains after GC reported the store empty.
			if !s.HasVersions() {
				delete(m.dirty, s)
			}
			m.dirtyMu.Unlock()
		}
	}
}

// Txn is one transaction. The zero commit word means active; ^0 means
// aborted; any other value is the commit timestamp.
type Txn struct {
	id      uint64
	beginTS uint64
	mgr     *Manager
	word    atomic.Uint64
}

// ID returns the manager-assigned transaction id (1-based).
func (t *Txn) ID() uint64 { return t.id }

// BeginTS returns the snapshot timestamp.
func (t *Txn) BeginTS() uint64 { return t.beginTS }

// Aborted reports whether the transaction has been marked aborted.
func (t *Txn) Aborted() bool { return t.word.Load() == abortedWord }

// Committed reports whether the transaction committed.
func (t *Txn) Committed() bool {
	w := t.word.Load()
	return w != 0 && w != abortedWord
}

// Visible reports whether writer w's writes are visible to reader t:
// t wrote them itself, or w committed at or before t's snapshot.
func (t *Txn) Visible(w *Txn) bool {
	if w == t {
		return true
	}
	word := w.word.Load()
	return word != 0 && word != abortedWord && word <= t.beginTS
}

// Commit stamps the commit timestamp, deregisters the transaction, and
// sweeps version garbage. Durability (WAL commit) must already be
// settled by the caller: stamping makes the writes visible.
func (t *Txn) Commit() { t.mgr.finish(t, false) }

// Abort marks the transaction aborted, deregisters it, and sweeps
// version garbage. The caller must have finished undoing the
// transaction's writes first: marking makes its remaining chain
// entries GC-eligible, so a not-yet-undone row could lose the chain
// that redirects readers away from its pre-undo page bytes.
func (t *Txn) Abort() { t.mgr.finish(t, true) }
