// Package mvcc provides the transaction timestamps and row-version
// bookkeeping behind snapshot-isolation reads and first-updater-wins
// write-conflict detection.
//
// The design deliberately keeps the on-page row format untouched: a
// heap page always holds the *newest* bytes of every row, and an
// in-memory side store (VersionStore, one per table) keeps the chain
// of pre-images that older snapshots still need. A chain exists only
// while some transaction needs it — entries are garbage-collected once
// every active snapshot is newer than the writer that created them —
// so a database with no open interactive transactions carries zero
// versioning overhead on the read path.
//
// Timestamps: the Manager keeps a logical commit clock split in two.
// ReserveCommit assigns the next clock value to a committing
// transaction before its log sync, fixing the commit order; the
// timestamp is *published* (made visible to snapshots) only after the
// group-commit sync reports the commit record durable, and strictly in
// reservation order, so the published clock never exposes a gap. A
// transaction's snapshot is the published clock at Begin; a write is
// visible to a reader iff the reader made it, or the writer published
// at or before the reader's snapshot. This is the commit pipeline:
// while one transaction's commit record is being synced, later
// transactions reserve their own timestamps and append their commit
// records behind it, and one shared fsync publishes the whole batch.
package mvcc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrWriteConflict is returned when first-updater-wins detects that a
// row targeted by a write was already written by a transaction that is
// not visible to the writer (still active, aborted but not yet undone,
// or committed after the writer's snapshot). The losing transaction
// must abort; under bounded wait-then-abort the loser first waits a
// short deadline for holders that may still release the row.
var ErrWriteConflict = errors.New("mvcc: write-write conflict")

// abortedWord is the commit-word value marking an aborted transaction.
const abortedWord = ^uint64(0)

// gcEvery amortizes version-store garbage collection: a full sweep of
// the dirty stores runs once per this many transaction terminations
// (instead of on every one), plus whenever the system goes idle so the
// no-transactions state returns to zero versioning overhead.
const gcEvery = 32

// Manager issues transactions and owns the commit clock.
type Manager struct {
	mu        sync.Mutex
	ts        uint64 // last RESERVED commit timestamp (clock head)
	published uint64 // newest published timestamp (snapshot clock)
	nextID    uint64
	active    map[uint64]*Txn
	pending   []*Txn // reserved commits awaiting durability, in ts order

	dirtyMu sync.Mutex
	dirty   map[*VersionStore]struct{}

	finishes atomic.Int64 // terminations since startup (drives amortized GC)

	// Contention telemetry (see ContentionStats).
	rowWaits           atomic.Int64
	rowWaitNanos       atomic.Int64
	rowWaitTimeouts    atomic.Int64
	rowWaitRescues     atomic.Int64
	immediateConflicts atomic.Int64
	publishBatches     atomic.Int64
	publishedTxns      atomic.Int64
	pipelineMax        atomic.Int64
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	return &Manager{
		active: make(map[uint64]*Txn),
		dirty:  make(map[*VersionStore]struct{}),
	}
}

// Begin starts a transaction whose snapshot is the published clock:
// reserved-but-unsynced commits are not yet durable, so they must not
// be visible to it. The snapshot is pinned immediately — callers may
// observe it straight away.
func (m *Manager) Begin() *Txn { return m.begin(true) }

// BeginLazy is Begin with the snapshot left provisional: the caller
// promises to Pin before the transaction observes anything through it.
// Until then the snapshot retains no versions (see sweep) and a Pin
// re-stamps it at the then-current published clock, so a transaction
// that idles between BEGIN and its first statement neither blocks GC
// nor conflicts with commits that landed in the gap.
func (m *Manager) BeginLazy() *Txn { return m.begin(false) }

func (m *Manager) begin(pinned bool) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	tx := &Txn{
		id:      m.nextID,
		beginTS: m.published,
		pinned:  pinned,
		mgr:     m,
		done:    make(chan struct{}),
	}
	m.active[tx.id] = tx
	return tx
}

// Pin fixes tx's snapshot at the current published clock, once.
// BeginLazy gives a transaction a provisional snapshot, but until the
// transaction observes anything through it the snapshot is unobservable
// state — so the engine re-stamps it at the first statement (lazy
// snapshot pinning). Advancing an unobserved snapshot is indistinguishable from
// the transaction simply having begun later, which a client that has
// not yet run a statement cannot rule out; once pinned, the snapshot
// never moves again. The practical effect under contention: a
// transaction that waited for write admission starts from a snapshot
// that already includes the previous holder's commit instead of
// conflicting with it.
//
// Pin must be called by the transaction's own goroutine. beginTS is
// written under m.mu because the GC sweep reads active transactions'
// snapshots under the same lock.
func (m *Manager) Pin(tx *Txn) {
	if tx.pinned {
		return
	}
	m.mu.Lock()
	tx.pinned = true
	tx.beginTS = m.published
	m.mu.Unlock()
}

// ActiveCount reports how many transactions are begun but not yet
// finished (reserved-but-unpublished commits count as active: their
// outcome is not settled, so the engine's DDL fence must still see
// them). The engine uses it to fence DDL off from open transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// PinnedCount reports how many active transactions hold a pinned
// snapshot — the transactions that constrain the GC horizon. The
// server's drain check uses it: after every connection is reaped it
// must be zero, or a disconnect leaked a snapshot and version chains
// can never be collected past it.
func (m *Manager) PinnedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.active {
		if a.pinned {
			n++
		}
	}
	return n
}

// Horizon reports the current GC horizon: the oldest snapshot any
// pinned active transaction holds, or the published clock when none
// is. Tests use it to prove a disconnect released its snapshot (the
// horizon advances past it).
func (m *Manager) Horizon() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.published
	for _, a := range m.active {
		if a.pinned && a.beginTS < h {
			h = a.beginTS
		}
	}
	return h
}

// ReserveCommit assigns tx the next commit timestamp and queues it for
// publication. The caller then makes the commit record durable and
// calls MarkDurable (success) or ResolveAbort (failed sync/append).
// Reserving before the log sync is what pipelines commits: the clock's
// critical section is a counter increment, and the sync itself runs
// outside it, shared with every other commit in the same batch.
func (m *Manager) ReserveCommit(tx *Txn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.reserved.Load() {
		return
	}
	m.ts++
	tx.ts = m.ts
	tx.reserved.Store(true)
	m.pending = append(m.pending, tx)
	if d := int64(len(m.pending)); d > m.pipelineMax.Load() {
		m.pipelineMax.Store(d)
	}
}

// MarkDurable records that tx's commit record survived its log sync
// and publishes the longest durable prefix of the reservation queue,
// then blocks until tx's own timestamp is published (an earlier
// reservation may still be syncing). Publication is strictly in
// reservation order so the published clock never exposes t without
// every commit older than t.
func (m *Manager) MarkDurable(tx *Txn) {
	m.mu.Lock()
	tx.durable = true
	m.publishPrefixLocked()
	m.mu.Unlock()
	<-tx.done
	m.maybeGC()
}

// StampDDL burns one commit timestamp through the full pipeline and
// returns it published. A schema version published under this stamp is
// strictly newer than every snapshot begun before the call (their
// beginTS is at most the previously published clock), so those
// snapshots keep resolving the prior schema version — the same
// visibility rule rows get, applied to catalog entries. The call may
// briefly block behind commits already mid-sync (publication is in
// reservation order), which is the only "wait" an online ALTER performs
// beyond its table latch.
func (m *Manager) StampDDL() uint64 {
	tx := m.Begin()
	m.ReserveCommit(tx)
	m.MarkDurable(tx)
	return tx.word.Load()
}

// ResolveAbort withdraws tx's commit reservation after a failed
// durability step: its queue slot is skipped (the timestamp is burned,
// which snapshots never notice) so the pipeline behind it keeps
// flowing, and the transaction returns to the plain active-aborting
// state — conflict waiters go back to waiting for its rollback instead
// of treating it as a certain commit. The caller still runs the undo
// and Abort.
func (m *Manager) ResolveAbort(tx *Txn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !tx.reserved.Load() {
		return
	}
	tx.skipped = true
	tx.reserved.Store(false)
	m.publishPrefixLocked()
}

// publishPrefixLocked pops the queue head while it is resolved:
// durable entries publish (commit word stored, snapshot clock
// advanced, waiters released), skipped entries are dropped. Called
// with m.mu held.
func (m *Manager) publishPrefixLocked() {
	n, pub := 0, 0
	for _, p := range m.pending {
		if p.skipped {
			n++
			continue
		}
		if !p.durable {
			break
		}
		p.word.Store(p.ts)
		m.published = p.ts
		p.reserved.Store(false)
		delete(m.active, p.id)
		close(p.done)
		n++
		pub++
	}
	if n > 0 {
		m.pending = m.pending[n:]
	}
	if pub > 0 {
		m.publishBatches.Add(1)
		m.publishedTxns.Add(int64(pub))
		m.finishes.Add(int64(pub))
	}
}

// markDirty records that a store holds version chains so the GC sweep
// knows where to collect.
func (m *Manager) markDirty(s *VersionStore) {
	m.dirtyMu.Lock()
	m.dirty[s] = struct{}{}
	m.dirtyMu.Unlock()
}

// maybeGC runs the version-store sweep on an amortized schedule: once
// per gcEvery terminations while transactions are in flight (the sweep
// is O(total chains), far too expensive per commit), and on every
// termination that leaves the system idle, so quiescence always
// returns to the zero-chains state the unversioned fast paths assume.
func (m *Manager) maybeGC() {
	n := m.finishes.Load()
	if n%gcEvery != 0 {
		m.mu.Lock()
		idle := len(m.active) == 0
		m.mu.Unlock()
		if !idle {
			return
		}
	}
	m.sweep()
}

// sweep garbage-collects every dirty store against the current
// horizon: the oldest snapshot any active PINNED transaction holds, or
// the published clock when none is. An unpinned transaction has not
// observed its provisional snapshot and never will — its pin re-stamps
// it at the then-current published clock, which is at least this
// sweep's horizon (Pin and the horizon read serialize on m.mu) — so it
// retains nothing. Reserved-but-unpublished writers keep a zero commit
// word, so their entries are never collected regardless of the
// horizon.
func (m *Manager) sweep() {
	m.mu.Lock()
	horizon := m.published
	for _, a := range m.active {
		if a.pinned && a.beginTS < horizon {
			horizon = a.beginTS
		}
	}
	m.mu.Unlock()

	m.dirtyMu.Lock()
	stores := make([]*VersionStore, 0, len(m.dirty))
	for s := range m.dirty {
		stores = append(stores, s)
	}
	m.dirtyMu.Unlock()
	for _, s := range stores {
		if s.GC(horizon) {
			m.dirtyMu.Lock()
			// Re-check under the lock: a concurrent write may have re-added
			// chains after GC reported the store empty.
			if !s.HasVersions() {
				delete(m.dirty, s)
			}
			m.dirtyMu.Unlock()
		}
	}
}

// ContentionStats is a snapshot of the manager's write-conflict and
// commit-pipeline telemetry.
type ContentionStats struct {
	// RowWaits counts statements that parked in bounded wait-then-abort
	// at least once; RowWaitNanos is their total parked time.
	// RowWaitTimeouts are waits that expired into a conflict abort;
	// RowWaitRescues are waits after which every contended row had
	// resolved and the write proceeded. ImmediateConflicts are
	// first-updater-wins conflicts no wait could clear (the holder
	// already committed too new, or holds a reserved commit timestamp)
	// or that arrived with waiting disabled.
	RowWaits           int64
	RowWaitNanos       int64
	RowWaitTimeouts    int64
	RowWaitRescues     int64
	ImmediateConflicts int64
	// PipelineDepth is the current number of reserved commits awaiting
	// publication; PipelineMax its high-water mark. PublishBatches
	// counts publication rounds that released at least one commit, and
	// PublishedTxns the commits they released (PublishedTxns /
	// PublishBatches is the mean pipeline batch).
	PipelineDepth  int64
	PipelineMax    int64
	PublishBatches int64
	PublishedTxns  int64
}

// Contention returns current contention telemetry.
func (m *Manager) Contention() ContentionStats {
	m.mu.Lock()
	depth := int64(len(m.pending))
	m.mu.Unlock()
	return ContentionStats{
		RowWaits:           m.rowWaits.Load(),
		RowWaitNanos:       m.rowWaitNanos.Load(),
		RowWaitTimeouts:    m.rowWaitTimeouts.Load(),
		RowWaitRescues:     m.rowWaitRescues.Load(),
		ImmediateConflicts: m.immediateConflicts.Load(),
		PipelineDepth:      depth,
		PipelineMax:        m.pipelineMax.Load(),
		PublishBatches:     m.publishBatches.Load(),
		PublishedTxns:      m.publishedTxns.Load(),
	}
}

// Txn is one transaction. The zero commit word means active (or
// reserved); ^0 means aborted; any other value is the published commit
// timestamp.
type Txn struct {
	id      uint64
	beginTS uint64
	pinned  bool // owner goroutine only: snapshot observed, beginTS frozen
	mgr     *Manager
	word    atomic.Uint64

	// reserved is set between ReserveCommit and publication (or
	// ResolveAbort). Conflict waiters use it to classify the holder: a
	// reserved timestamp was issued after any live snapshot began, so
	// if it publishes it is certainly too new — waiting is pointless.
	reserved atomic.Bool
	ts       uint64 // reserved commit timestamp; valid once reserved
	durable  bool   // under mgr.mu: commit record survived its sync
	skipped  bool   // under mgr.mu: reservation withdrawn (failed commit)
	// done is closed when the transaction's outcome is settled AND
	// acted on: at publication, or at the abort mark (which the engine
	// only sets after the rollback finished popping version entries).
	done chan struct{}
}

// ID returns the manager-assigned transaction id (1-based).
func (t *Txn) ID() uint64 { return t.id }

// BeginTS returns the snapshot timestamp.
func (t *Txn) BeginTS() uint64 { return t.beginTS }

// Aborted reports whether the transaction has been marked aborted.
func (t *Txn) Aborted() bool { return t.word.Load() == abortedWord }

// Committed reports whether the transaction committed (published). A
// reserved-but-unpublished commit reports false: its durability is not
// settled, so nothing may depend on it committing.
func (t *Txn) Committed() bool {
	w := t.word.Load()
	return w != 0 && w != abortedWord
}

// Reserved reports whether the transaction holds a reserved commit
// timestamp that has not yet published.
func (t *Txn) Reserved() bool { return t.reserved.Load() }

// Visible reports whether writer w's writes are visible to reader t:
// t wrote them itself, or w published at or before t's snapshot.
func (t *Txn) Visible(w *Txn) bool {
	if w == t {
		return true
	}
	word := w.word.Load()
	return word != 0 && word != abortedWord && word <= t.beginTS
}

// Commit commits synchronously: reserve (if the caller has not
// already), mark durable, and wait for publication. Durability (WAL
// commit) must already be settled by the caller: publication makes the
// writes visible. Callers that pipeline use ReserveCommit before their
// log sync and MarkDurable after instead; Commit then just completes
// the publication.
func (t *Txn) Commit() {
	t.mgr.ReserveCommit(t)
	t.mgr.MarkDurable(t)
}

// Abort marks the transaction aborted, deregisters it, and releases
// any conflict waiters. The caller must have finished undoing the
// transaction's writes first (and ResolveAbort-ed a failed commit
// reservation): marking makes its remaining chain entries GC-eligible,
// so a not-yet-undone row could lose the chain that redirects readers
// away from its pre-undo page bytes.
//
// Aborts sweep the version stores eagerly rather than on the commit
// path's amortized schedule: an abort is off the throughput-critical
// path, and an aborting reader is often the oldest snapshot — the one
// whose departure makes every retained chain collectable at once.
func (t *Txn) Abort() {
	m := t.mgr
	m.mu.Lock()
	t.word.Store(abortedWord)
	delete(m.active, t.id)
	close(t.done)
	m.mu.Unlock()
	m.finishes.Add(1)
	m.sweep()
}
