package mvcc

import (
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// entry is one write to a row: who made it and the bytes the row held
// immediately before (nil if the row did not exist). The store owns
// pre — callers must hand over bytes that nothing else mutates.
type entry struct {
	writer *Txn
	pre    []byte
}

// VersionStore holds the version chains of one table, keyed by RID.
// A chain's entries run oldest to newest; the newest bytes of the row
// live on the heap page itself. Reading a row for a snapshot walks the
// chain newest-first: stop at the first visible writer (the current
// bytes are theirs), otherwise step back to that entry's pre-image.
//
// Mutating calls happen while the caller holds the table's latch
// exclusively (the apply phase of a DML statement, or its undo); reads
// run under at least the shared latch. WaitCheckWrites is the one
// latch-free entry point — it only inspects chains and parks, so the
// internal mutex alone keeps it coherent against concurrent appliers.
type VersionStore struct {
	mu     sync.Mutex
	mgr    *Manager
	chains map[storage.RID][]entry

	// signal wakes conflict waiters parked on an aborted-but-not-yet-
	// undone entry: PopWrite and GC close it (close-and-renew) whenever
	// they remove entries. Lazily allocated — nil while nobody waits.
	signal chan struct{}
}

// NewStore returns an empty store. mgr may be nil in tests; then no
// automatic GC registration happens.
func NewStore(mgr *Manager) *VersionStore {
	return &VersionStore{mgr: mgr, chains: make(map[storage.RID][]entry)}
}

// HasVersions reports whether any chain exists. Statements use it to
// skip the versioned read path entirely when no transaction has
// in-flight or recently committed writes on the table.
func (s *VersionStore) HasVersions() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chains) > 0
}

// HasChain reports whether rid has a version chain.
func (s *VersionStore) HasChain(rid storage.RID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chains[rid]
	return ok
}

// Pinned reports whether rid's heap slot must not be reused by a fresh
// insert. Any chain pins its slot: reusing it would splice an
// unrelated row into the middle of a version chain.
func (s *VersionStore) Pinned(rid storage.RID) bool { return s.HasChain(rid) }

// CheckWrite applies first-updater-wins: writing rid is allowed iff
// the newest version entry (if any) is visible to tx — tx's own write,
// or a commit at or before tx's snapshot. Everything else (active
// writer, aborted-but-not-yet-undone writer, commit after tx began)
// is ErrWriteConflict.
func (s *VersionStore) CheckWrite(tx *Txn, rid storage.RID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	if len(ch) == 0 {
		return nil
	}
	if !tx.Visible(ch[len(ch)-1].writer) {
		return ErrWriteConflict
	}
	return nil
}

// RecordWrite appends a version entry for tx's write to rid, taking
// ownership of pre. The caller has already passed CheckWrite (or the
// write is an insert into a fresh slot, which cannot conflict).
func (s *VersionStore) RecordWrite(tx *Txn, rid storage.RID, pre []byte) {
	s.mu.Lock()
	s.chains[rid] = append(s.chains[rid], entry{writer: tx, pre: pre})
	s.mu.Unlock()
	if s.mgr != nil {
		s.mgr.markDirty(s)
	}
}

// NewestWriter returns the transaction behind the newest version entry
// of rid, or ok=false when rid has no chain.
func (s *VersionStore) NewestWriter(rid storage.RID) (*Txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	if len(ch) == 0 {
		return nil, false
	}
	return ch[len(ch)-1].writer, true
}

// PopWrite removes the newest entry of rid's chain, which must belong
// to tx — the undo path for a rolled-back write.
func (s *VersionStore) PopWrite(tx *Txn, rid storage.RID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	if len(ch) == 0 || ch[len(ch)-1].writer != tx {
		return // already collected (aborted entries are GC-eligible)
	}
	if len(ch) == 1 {
		delete(s.chains, rid)
	} else {
		s.chains[rid] = ch[:len(ch)-1]
	}
	s.bumpLocked()
}

// signalLocked returns the current waiter-wakeup channel, allocating
// it on first use. Called with s.mu held.
func (s *VersionStore) signalLocked() <-chan struct{} {
	if s.signal == nil {
		s.signal = make(chan struct{})
	}
	return s.signal
}

// bumpLocked wakes every waiter parked on the store by closing the
// signal channel and renewing it lazily. Called with s.mu held by any
// path that removes chain entries.
func (s *VersionStore) bumpLocked() {
	if s.signal != nil {
		close(s.signal)
		s.signal = nil
	}
}

// WaitCheckWrites is first-updater-wins with bounded wait-then-abort:
// for each rid it checks the newest chain entry like CheckWrite, but
// when the blocking holder may still release the row — it is active
// (its fate is undecided) or aborted with its undo still pending (the
// entry is about to be popped) — the caller parks until the holder
// resolves or the shared budget expires. Holders that committed after
// tx's snapshot, or that hold a reserved commit timestamp (issued
// after every live snapshot, so if it publishes it is certainly too
// new), conflict immediately: no amount of waiting changes the
// outcome. The caller holds no table latch; the apply phase rechecks
// under the exclusive latch via the mutators' own CheckWrite calls, so
// a holder that slips in after this returns is still caught.
func (s *VersionStore) WaitCheckWrites(tx *Txn, rids []storage.RID, budget time.Duration) error {
	if s.mgr == nil {
		for _, rid := range rids {
			if err := s.CheckWrite(tx, rid); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		timer  *time.Timer
		parked time.Time
	)
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if !parked.IsZero() {
			s.mgr.rowWaitNanos.Add(time.Since(parked).Nanoseconds())
		}
	}()
	for _, rid := range rids {
		for {
			s.mu.Lock()
			ch := s.chains[rid]
			if len(ch) == 0 || tx.Visible(ch[len(ch)-1].writer) {
				s.mu.Unlock()
				break
			}
			holder := ch[len(ch)-1].writer
			word := holder.word.Load()
			if (word != 0 && word != abortedWord) || holder.Reserved() {
				// Committed after tx began, or certain to if its sync
				// succeeds: waiting cannot clear this conflict.
				s.mu.Unlock()
				s.mgr.immediateConflicts.Add(1)
				return ErrWriteConflict
			}
			var wake <-chan struct{}
			if word == abortedWord {
				wake = s.signalLocked() // undo pop is imminent
			} else {
				wake = holder.done // active: settled at publish/abort
			}
			s.mu.Unlock()
			if budget <= 0 {
				s.mgr.immediateConflicts.Add(1)
				return ErrWriteConflict
			}
			if timer == nil {
				// One timer with the full budget, shared across every rid:
				// the statement's total parked time is bounded, not each
				// row's. timer.C is consumed at most once — a timeout
				// returns immediately below.
				timer = time.NewTimer(budget)
				parked = time.Now()
				s.mgr.rowWaits.Add(1)
			}
			select {
			case <-wake:
				// Re-check the chain: the wake may be for another rid's
				// entry, or the holder may have resolved against us.
			case <-timer.C:
				s.mgr.rowWaitTimeouts.Add(1)
				return ErrWriteConflict
			}
		}
	}
	if !parked.IsZero() {
		s.mgr.rowWaitRescues.Add(1)
	}
	return nil
}

// Resolve returns the bytes of rid visible to reader, given cur — the
// current heap bytes (nil if the slot is dead). The second result is
// false when no version is visible (the row does not exist in the
// reader's snapshot). The returned bytes may alias cur or an immutable
// store-owned pre-image.
func (s *VersionStore) Resolve(reader *Txn, rid storage.RID, cur []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rid]
	for i := len(ch) - 1; i >= 0; i-- {
		if reader.Visible(ch[i].writer) {
			break
		}
		cur = ch[i].pre
	}
	return cur, cur != nil
}

// RIDs returns every chained RID in (page, slot) order, for
// deterministic enumeration of rows whose visible version may differ
// from (or be missing from) the physical heap and indexes.
func (s *VersionStore) RIDs() []storage.RID {
	s.mu.Lock()
	out := make([]storage.RID, 0, len(s.chains))
	for rid := range s.chains {
		out = append(out, rid)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Page != out[j].Page {
			return out[i].Page < out[j].Page
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// UncommittedPreImages calls fn for every pre-image written by a
// transaction that has not committed (active, or aborted with its undo
// still pending), stopping early if fn returns false. Unique-key
// checks use it to detect keys that are physically absent from an
// index but would reappear if the uncommitted writer rolled back.
func (s *VersionStore) UncommittedPreImages(fn func(rid storage.RID, writer *Txn, pre []byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for rid, ch := range s.chains {
		for _, e := range ch {
			if e.pre == nil || e.writer.Committed() {
				continue
			}
			if !fn(rid, e.writer, e.pre) {
				return
			}
		}
	}
}

// GC drops entries no snapshot can need: from the oldest end of each
// chain, remove entries whose writer aborted or committed at or before
// horizon (the oldest active snapshot). It stops at the first entry
// that must stay — chain order guarantees nothing newer is collectable
// either. Returns true when the store is left empty.
func (s *VersionStore) GC(horizon uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for rid, ch := range s.chains {
		i := 0
		for i < len(ch) {
			w := ch[i].writer.word.Load()
			if w == abortedWord || (w != 0 && w <= horizon) {
				i++
				continue
			}
			break
		}
		switch {
		case i == len(ch):
			delete(s.chains, rid)
			changed = true
		case i > 0:
			s.chains[rid] = append([]entry(nil), ch[i:]...)
			changed = true
		}
	}
	if changed {
		s.bumpLocked()
	}
	return len(s.chains) == 0
}
