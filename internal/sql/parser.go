package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon
// is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression (used in tests and by the
// transformation layer to build predicates).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

type parser struct {
	toks    []token
	pos     int
	nparams int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) advance()    { p.pos++ }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// isKw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("BEGIN"), p.isKw("START"):
		return p.parseBegin()
	case p.isKw("COMMIT"), p.isKw("END"):
		p.advance()
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &CommitStmt{}, nil
	case p.isKw("ROLLBACK"):
		return p.parseRollback()
	case p.isKw("SAVEPOINT"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &SavepointStmt{Name: name}, nil
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

func (p *parser) parseBegin() (Statement, error) {
	if p.acceptKw("START") {
		if err := p.expectKw("TRANSACTION"); err != nil {
			return nil, err
		}
		return &BeginStmt{}, nil
	}
	if err := p.expectKw("BEGIN"); err != nil {
		return nil, err
	}
	p.acceptKw("TRANSACTION")
	p.acceptKw("WORK")
	return &BeginStmt{}, nil
}

func (p *parser) parseRollback() (Statement, error) {
	if err := p.expectKw("ROLLBACK"); err != nil {
		return nil, err
	}
	p.acceptKw("TRANSACTION")
	p.acceptKw("WORK")
	if p.acceptKw("TO") {
		p.acceptKw("SAVEPOINT")
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &RollbackStmt{To: name}, nil
	}
	return &RollbackStmt{}, nil
}

// clauseKeywords cannot be consumed as implicit table/column aliases.
var clauseKeywords = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "ON": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "AS": true,
	"SET": true, "VALUES": true, "AND": true, "OR": true, "NOT": true,
	"IS": true, "IN": true, "LIKE": true, "ASC": true, "DESC": true,
	"UNION": true, "SELECT": true, "DISTINCT": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	s.Distinct = p.acceptKw("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		p.advance()
		s.Limit = &n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// qualified star: ident.*
	if p.cur().kind == tokIdent && !clauseKeywords[strings.ToUpper(p.cur().text)] &&
		p.peek().kind == tokSymbol && p.peek().text == "." {
		save := p.pos
		qual := p.cur().text
		p.advance()
		p.advance()
		if p.acceptSymbol("*") {
			return SelectItem{Star: true, StarQualifier: qual}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.cur(); t.kind == tokIdent && !clauseKeywords[strings.ToUpper(t.text)] {
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

// parseTableRef parses one FROM entry including JOIN chains.
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.isKw("JOIN"):
			p.advance()
			jt = InnerJoin
		case p.isKw("INNER"):
			p.advance()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.isKw("LEFT"):
			p.advance()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		default:
			return left, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinTable{Left: left, Right: right, Type: jt, On: on}
	}
}

func (p *parser) parsePrimaryTableRef() (TableRef, error) {
	if p.acceptSymbol("(") {
		if p.isKw("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			p.acceptKw("AS")
			alias, err := p.expectIdent()
			if err != nil {
				return nil, fmt.Errorf("%w (derived tables need an alias)", err)
			}
			return &SubqueryTable{Select: sub, Alias: alias}, nil
		}
		// Parenthesized join tree.
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return tr, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	nt := &NamedTable{Name: name}
	if p.acceptKw("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		nt.Alias = a
	} else if t := p.cur(); t.kind == tokIdent && !clauseKeywords[strings.ToUpper(t.text)] {
		nt.Alias = t.text
		p.advance()
	}
	return nt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	if t := p.cur(); t.kind == tokIdent && !clauseKeywords[strings.ToUpper(t.text)] {
		st.Alias = t.text
		p.advance()
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if t := p.cur(); t.kind == tokIdent && !clauseKeywords[strings.ToUpper(t.text)] {
		st.Alias = t.text
		p.advance()
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, p.errf("UNIQUE TABLE is not a thing")
		}
		st := &CreateTableStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return st, nil
	case p.acceptKw("INDEX"):
		st := &CreateIndexStmt{Unique: unique}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		st.Table, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	switch {
	case p.acceptKw("TABLE"):
		st := &DropTableStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.acceptKw("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name, Table: table}, nil
	}
	return nil, p.errf("expected TABLE or INDEX after DROP")
}

func (p *parser) parseAlter() (Statement, error) {
	p.advance() // ALTER
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("ADD"):
		p.acceptKw("COLUMN")
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		return &AlterAddColumnStmt{Table: table, Col: col}, nil
	case p.acceptKw("DROP"):
		p.acceptKw("COLUMN")
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &AlterDropColumnStmt{Table: table, Col: col}, nil
	case p.acceptKw("ALTER"):
		p.acceptKw("COLUMN")
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// TYPE <t> or SET DATA TYPE <t>.
		if p.acceptKw("SET") {
			if err := p.expectKw("DATA"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("TYPE"); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &AlterColumnTypeStmt{Table: table, Col: col, Type: typ}, nil
	}
	return nil, p.errf("expected ADD, DROP, or ALTER COLUMN after ALTER TABLE %s", table)
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	typ, err := p.parseType()
	if err != nil {
		return ColumnDef{}, err
	}
	def := ColumnDef{Name: name, Type: typ}
	if p.acceptKw("NOT") {
		if err := p.expectKw("NULL"); err != nil {
			return ColumnDef{}, err
		}
		def.NotNull = true
	}
	return def, nil
}

func (p *parser) parseType() (types.ColumnType, error) {
	name, err := p.expectIdent()
	if err != nil {
		return types.ColumnType{}, err
	}
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return types.IntType, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return types.FloatType, nil
	case "DATE":
		return types.DateType, nil
	case "BOOLEAN", "BOOL":
		return types.BoolType, nil
	case "TEXT":
		return types.ColumnType{Kind: types.KindString}, nil
	case "VARCHAR", "CHAR", "CHARACTER":
		width := 0
		if p.acceptSymbol("(") {
			t := p.cur()
			if t.kind != tokNumber {
				return types.ColumnType{}, p.errf("expected length in VARCHAR(n)")
			}
			w, err := strconv.Atoi(t.text)
			if err != nil {
				return types.ColumnType{}, p.errf("bad VARCHAR length %q", t.text)
			}
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return types.ColumnType{}, err
			}
			width = w
		}
		return types.ColumnType{Kind: types.KindString, Width: width}, nil
	}
	return types.ColumnType{}, p.errf("unknown type %s", name)
}

// --- Expression parsing (precedence climbing) --------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) cmpOp() (BinOp, bool) {
	t := p.cur()
	if t.kind != tokSymbol {
		return 0, false
	}
	op, ok := cmpOps[t.text]
	return op, ok
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// postfix predicates
	for {
		if op, ok := p.cmpOp(); ok {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		switch {
		case p.isKw("IS"):
			p.advance()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
		case p.isKw("IN"):
			p.advance()
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case p.isKw("LIKE"):
			p.advance()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &LikeExpr{X: l, Pattern: pat}
		case p.isKw("NOT"):
			// x NOT IN / x NOT LIKE
			save := p.pos
			p.advance()
			if p.acceptKw("IN") {
				in, err := p.parseInTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			} else if p.acceptKw("LIKE") {
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &LikeExpr{X: l, Pattern: pat, Not: true}
			} else {
				p.pos = save
				return l, nil
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseInTail(x Expr, not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	in := &InExpr{X: x, Not: not}
	if p.isKw("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Subquery = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.acceptSymbol("+"):
			op = OpAdd
		case p.acceptSymbol("-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.acceptSymbol("*"):
			op = OpMul
		case p.acceptSymbol("/"):
			op = OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.Kind {
			case types.KindInt:
				return &Literal{Val: types.NewInt(-lit.Val.Int)}, nil
			case types.KindFloat:
				return &Literal{Val: types.NewFloat(-lit.Val.Float)}, nil
			}
		}
		return &UnaryExpr{Op: OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: types.NewInt(n)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: types.NewString(t.text)}, nil
	case tokParam:
		p.advance()
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "NULL":
			p.advance()
			return &Literal{Val: types.Null()}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: types.NewBool(false)}, nil
		case "DATE":
			if p.peek().kind == tokString {
				p.advance()
				lit := p.cur().text
				p.advance()
				tm, err := time.Parse("2006-01-02", lit)
				if err != nil {
					return nil, p.errf("bad DATE literal %q", lit)
				}
				return &Literal{Val: types.DateFromTime(tm)}, nil
			}
		case "CAST":
			if p.peek().kind == tokSymbol && p.peek().text == "(" {
				p.advance()
				p.advance()
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AS"); err != nil {
					return nil, err
				}
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &CastExpr{X: x, Type: typ}, nil
			}
		}
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			name := t.text
			p.advance()
			p.advance()
			f := &FuncExpr{Name: strings.ToUpper(name)}
			if p.acceptSymbol("*") {
				f.Star = true
			} else if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Column reference, possibly qualified. Clause keywords can
		// never start an operand (Table/Chunk/Row stay usable: they are
		// not in the reserved set).
		if clauseKeywords[upper] {
			return nil, p.errf("unexpected keyword %s in expression", t.text)
		}
		p.advance()
		if p.cur().kind == tokSymbol && p.cur().text == "." {
			p.advance()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
