// Canonicalization: turning literal-inlined statements into
// parameterized templates. Application code (and the CRM benchmark
// deck) mostly sends SQL with values inlined — `SELECT * FROM Account
// WHERE Id = 7` — which defeats any text-keyed statement cache: every
// distinct value is a distinct cache key. ExtractParams rewrites such a
// statement in place into its template form (`... WHERE Id = ?`) and
// hands back the extracted values, so the rewrite/plan caches key on
// the template while execution binds the original values as ordinary
// positional parameters.
package sql

import "repro/internal/types"

// ExtractParams canonicalizes st in place for SELECT, UPDATE, and
// DELETE: every literal in a parameterizable position (WHERE and HAVING
// trees, UPDATE SET values — including inside IN lists, LIKE patterns,
// function arguments, and CASTs, but never inside subqueries) is
// replaced by a positional Param, and the displaced values are returned
// in Param index order (the deterministic walk order: SET before WHERE
// before HAVING).
//
// It returns (nil, false), leaving st untouched, when st is not a
// candidate: a statement kind whose rewrite may be value-dependent or
// side-effecting (INSERT reserves row ids; DDL changes the catalog), a
// statement that already carries explicit Params (mixing caller params
// with extracted ones would renumber the caller's indexes), or one with
// no literals to extract.
func ExtractParams(st Statement) ([]types.Value, bool) {
	switch s := st.(type) {
	case *SelectStmt:
		if s.Where == nil && s.Having == nil {
			return nil, false
		}
		if hasParams(st) {
			return nil, false
		}
		c := &canonizer{}
		s.Where = c.walk(s.Where)
		s.Having = c.walk(s.Having)
		return c.finish()
	case *UpdateStmt:
		if hasParams(st) {
			return nil, false
		}
		c := &canonizer{}
		for i := range s.Set {
			s.Set[i].Value = c.walk(s.Set[i].Value)
		}
		s.Where = c.walk(s.Where)
		return c.finish()
	case *DeleteStmt:
		if s.Where == nil {
			return nil, false
		}
		if hasParams(st) {
			return nil, false
		}
		c := &canonizer{}
		s.Where = c.walk(s.Where)
		return c.finish()
	}
	return nil, false
}

// canonizer carries the extracted values of one ExtractParams walk.
type canonizer struct {
	vals []types.Value
}

func (c *canonizer) finish() ([]types.Value, bool) {
	if len(c.vals) == 0 {
		return nil, false
	}
	return c.vals, true
}

// walk replaces literals with Params bottom-up. Subqueries (IN
// subqueries here; derived tables never appear below a WHERE) are left
// intact: their literals stay inlined and simply make the template text
// more specific.
func (c *canonizer) walk(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Literal:
		p := &Param{Index: len(c.vals)}
		c.vals = append(c.vals, e.Val)
		return p
	case *BinaryExpr:
		e.L = c.walk(e.L)
		e.R = c.walk(e.R)
		return e
	case *UnaryExpr:
		e.X = c.walk(e.X)
		return e
	case *IsNullExpr:
		e.X = c.walk(e.X)
		return e
	case *InExpr:
		e.X = c.walk(e.X)
		for i := range e.List {
			e.List[i] = c.walk(e.List[i])
		}
		return e
	case *LikeExpr:
		e.X = c.walk(e.X)
		e.Pattern = c.walk(e.Pattern)
		return e
	case *FuncExpr:
		for i := range e.Args {
			e.Args[i] = c.walk(e.Args[i])
		}
		return e
	case *CastExpr:
		e.X = c.walk(e.X)
		return e
	}
	return e
}

// hasParams reports whether any expression anywhere in st (including
// subqueries and projection lists) is already a Param. Such statements
// are never canonicalized: the caller's positional values bind to the
// existing indexes, and extraction would interleave new indexes with
// theirs.
func hasParams(st Statement) bool {
	found := false
	visitStatement(st, func(e Expr) {
		if _, ok := e.(*Param); ok {
			found = true
		}
	})
	return found
}

// visitStatement calls fn on every expression node reachable from st,
// including inside subqueries.
func visitStatement(st Statement, fn func(Expr)) {
	switch s := st.(type) {
	case *SelectStmt:
		visitSelect(s, fn)
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				visitExpr(e, fn)
			}
		}
	case *UpdateStmt:
		for i := range s.Set {
			visitExpr(s.Set[i].Value, fn)
		}
		visitExpr(s.Where, fn)
	case *DeleteStmt:
		visitExpr(s.Where, fn)
	}
}

func visitSelect(s *SelectStmt, fn func(Expr)) {
	for _, it := range s.Items {
		visitExpr(it.Expr, fn)
	}
	for _, f := range s.From {
		visitTableRef(f, fn)
	}
	visitExpr(s.Where, fn)
	for _, g := range s.GroupBy {
		visitExpr(g, fn)
	}
	visitExpr(s.Having, fn)
	for _, o := range s.OrderBy {
		visitExpr(o.Expr, fn)
	}
}

func visitTableRef(t TableRef, fn func(Expr)) {
	switch t := t.(type) {
	case *SubqueryTable:
		visitSelect(t.Select, fn)
	case *JoinTable:
		visitTableRef(t.Left, fn)
		visitTableRef(t.Right, fn)
		visitExpr(t.On, fn)
	}
}

func visitExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *BinaryExpr:
		visitExpr(e.L, fn)
		visitExpr(e.R, fn)
	case *UnaryExpr:
		visitExpr(e.X, fn)
	case *IsNullExpr:
		visitExpr(e.X, fn)
	case *InExpr:
		visitExpr(e.X, fn)
		for _, i := range e.List {
			visitExpr(i, fn)
		}
		if e.Subquery != nil {
			visitSelect(e.Subquery, fn)
		}
	case *LikeExpr:
		visitExpr(e.X, fn)
		visitExpr(e.Pattern, fn)
	case *FuncExpr:
		for _, a := range e.Args {
			visitExpr(a, fn)
		}
	case *CastExpr:
		visitExpr(e.X, fn)
	}
}
