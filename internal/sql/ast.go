// Package sql contains the SQL dialect shared by the engine and the
// schema-mapping layer: a lexer, a recursive-descent parser, the AST,
// and an AST-to-SQL printer. The printer matters as much as the parser
// here — the paper's query-transformation layer (§6.1) rewrites logical
// SQL into physical SQL, and this package is the round-trip vehicle.
package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any SQL expression.
type Expr interface {
	expr()
	String() string
}

// --- Statements -------------------------------------------------------------

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // implicit cross join of these
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

// SelectItem is one projection: either a star (optionally qualified)
// or an expression with an optional alias.
type SelectItem struct {
	Star          bool
	StarQualifier string // "t" in t.*
	Expr          Expr
	Alias         string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is an entry in a FROM clause.
type TableRef interface {
	tableRef()
	String() string
}

// NamedTable references a base table, optionally aliased.
type NamedTable struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinType distinguishes inner and left outer joins.
type JoinType uint8

const (
	// InnerJoin keeps only matching pairs.
	InnerJoin JoinType = iota
	// LeftJoin keeps unmatched left rows with NULL-extended right side.
	LeftJoin
)

// JoinTable is an explicit JOIN ... ON tree node.
type JoinTable struct {
	Left, Right TableRef
	Type        JoinType
	On          Expr
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table   string
	Columns []string // empty = all columns in order
	Rows    [][]Expr
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

// ColumnDef is a column in CREATE TABLE / ALTER TABLE.
type ColumnDef struct {
	Name    string
	Type    types.ColumnType
	NotNull bool
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// DropIndexStmt is DROP INDEX name ON table.
type DropIndexStmt struct {
	Name  string
	Table string
}

// AlterAddColumnStmt is ALTER TABLE ... ADD COLUMN.
type AlterAddColumnStmt struct {
	Table string
	Col   ColumnDef
}

// AlterDropColumnStmt is ALTER TABLE ... DROP COLUMN.
type AlterDropColumnStmt struct {
	Table string
	Col   string
}

// AlterColumnTypeStmt is ALTER TABLE ... ALTER COLUMN ... TYPE (also
// accepted as SET DATA TYPE) — a type widening.
type AlterColumnTypeStmt struct {
	Table string
	Col   string
	Type  types.ColumnType
}

// BeginStmt is BEGIN [TRANSACTION | WORK] / START TRANSACTION.
type BeginStmt struct{}

// CommitStmt is COMMIT [TRANSACTION | WORK] / END.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK [TRANSACTION | WORK], or, with To set,
// ROLLBACK TO [SAVEPOINT] name (a partial rollback that keeps the
// transaction and the savepoint alive).
type RollbackStmt struct {
	To string
}

// SavepointStmt is SAVEPOINT name.
type SavepointStmt struct {
	Name string
}

func (*SelectStmt) stmt()         {}
func (*InsertStmt) stmt()         {}
func (*UpdateStmt) stmt()         {}
func (*DeleteStmt) stmt()         {}
func (*CreateTableStmt) stmt()    {}
func (*CreateIndexStmt) stmt()    {}
func (*DropTableStmt) stmt()      {}
func (*DropIndexStmt) stmt()      {}
func (*AlterAddColumnStmt) stmt()  {}
func (*AlterDropColumnStmt) stmt() {}
func (*AlterColumnTypeStmt) stmt() {}
func (*BeginStmt) stmt()          {}
func (*CommitStmt) stmt()         {}
func (*RollbackStmt) stmt()       {}
func (*SavepointStmt) stmt()      {}

func (*NamedTable) tableRef()    {}
func (*SubqueryTable) tableRef() {}
func (*JoinTable) tableRef()     {}

// --- Expressions ------------------------------------------------------------

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// Param is a positional `?` placeholder (0-based Index in parse order).
type Param struct {
	Index int
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators in precedence groups.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOp]string{
	OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "<>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// String returns the SQL spelling of the operator.
func (o BinOp) String() string { return binOpNames[o] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	// OpNot is logical negation.
	OpNot UnOp = iota
	// OpNeg is arithmetic negation.
	OpNeg
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op UnOp
	X  Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is `x [NOT] IN (list)` or `x [NOT] IN (subquery)`.
type InExpr struct {
	X        Expr
	List     []Expr
	Subquery *SelectStmt
	Not      bool
}

// LikeExpr is `x [NOT] LIKE pattern` with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// FuncExpr is a function call; aggregates (COUNT/SUM/AVG/MIN/MAX) are
// recognized by name in the planner. Star marks COUNT(*).
type FuncExpr struct {
	Name string
	Star bool
	Args []Expr
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type types.ColumnType
}

func (*ColumnRef) expr()  {}
func (*Literal) expr()    {}
func (*Param) expr()      {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IsNullExpr) expr() {}
func (*InExpr) expr()     {}
func (*LikeExpr) expr()   {}
func (*FuncExpr) expr()   {}
func (*CastExpr) expr()   {}

// --- SQL printing ------------------------------------------------------------

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Literal) String() string { return l.Val.SQLLiteral() }

func (p *Param) String() string { return "?" }

// needsParens reports whether sub must be parenthesized when printed as
// an operand of parent.
func needsParens(parent BinOp, sub Expr) bool {
	b, ok := sub.(*BinaryExpr)
	if !ok {
		return false
	}
	return prec(b.Op) < prec(parent)
}

func prec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	default:
		return 5
	}
}

func (b *BinaryExpr) String() string {
	l, r := b.L.String(), b.R.String()
	if needsParens(b.Op, b.L) {
		l = "(" + l + ")"
	}
	// Right side also parenthesized at equal precedence to preserve
	// left associativity for - and /.
	if rb, ok := b.R.(*BinaryExpr); ok && prec(rb.Op) <= prec(b.Op) {
		r = "(" + r + ")"
	}
	return l + " " + b.Op.String() + " " + r
}

func (u *UnaryExpr) String() string {
	if u.Op == OpNot {
		return "NOT (" + u.X.String() + ")"
	}
	return "-(" + u.X.String() + ")"
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

func (e *InExpr) String() string {
	var sb strings.Builder
	sb.WriteString(e.X.String())
	if e.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	if e.Subquery != nil {
		sb.WriteString(e.Subquery.String())
	} else {
		for i, x := range e.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(x.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (e *LikeExpr) String() string {
	op := " LIKE "
	if e.Not {
		op = " NOT LIKE "
	}
	return e.X.String() + op + e.Pattern.String()
}

func (f *FuncExpr) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return strings.ToUpper(f.Name) + "(" + strings.Join(args, ", ") + ")"
}

func (c *CastExpr) String() string {
	return "CAST(" + c.X.String() + " AS " + c.Type.String() + ")"
}

func (t *NamedTable) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

func (t *SubqueryTable) String() string {
	return "(" + t.Select.String() + ") AS " + t.Alias
}

func (t *JoinTable) String() string {
	kw := " JOIN "
	if t.Type == LeftJoin {
		kw = " LEFT JOIN "
	}
	right := t.Right.String()
	if _, nested := t.Right.(*JoinTable); nested {
		right = "(" + right + ")"
	}
	return t.Left.String() + kw + right + " ON " + t.On.String()
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.StarQualifier != "":
			sb.WriteString(it.StarQualifier + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT " + strconv.FormatInt(*s.Limit, 10))
	}
	return sb.String()
}

func (s *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, v := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

func (s *UpdateStmt) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + s.Table)
	if s.Alias != "" {
		sb.WriteString(" " + s.Alias)
	}
	sb.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Value.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	return sb.String()
}

func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Alias != "" {
		out += " " + s.Alias
	}
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

func (s *CreateTableStmt) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Name + " (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + c.Type.String())
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (s *CreateIndexStmt) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, s.Name, s.Table, strings.Join(s.Columns, ", "))
}

func (s *DropTableStmt) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Name
	}
	return "DROP TABLE " + s.Name
}

func (s *DropIndexStmt) String() string {
	return "DROP INDEX " + s.Name + " ON " + s.Table
}

func (s *AlterAddColumnStmt) String() string {
	out := "ALTER TABLE " + s.Table + " ADD COLUMN " + s.Col.Name + " " + s.Col.Type.String()
	if s.Col.NotNull {
		out += " NOT NULL"
	}
	return out
}

func (s *AlterDropColumnStmt) String() string {
	return "ALTER TABLE " + s.Table + " DROP COLUMN " + s.Col
}

func (s *AlterColumnTypeStmt) String() string {
	return "ALTER TABLE " + s.Table + " ALTER COLUMN " + s.Col + " TYPE " + s.Type.String()
}

func (s *BeginStmt) String() string { return "BEGIN" }

func (s *CommitStmt) String() string { return "COMMIT" }

func (s *RollbackStmt) String() string {
	if s.To != "" {
		return "ROLLBACK TO SAVEPOINT " + s.To
	}
	return "ROLLBACK"
}

func (s *SavepointStmt) String() string { return "SAVEPOINT " + s.Name }
