package sql

import (
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestExtractParamsSelect(t *testing.T) {
	st := mustParse(t, "SELECT * FROM Account WHERE Id = 7 AND Name LIKE 'a%'")
	vals, ok := ExtractParams(st)
	if !ok {
		t.Fatal("not extracted")
	}
	if got := st.String(); got != "SELECT * FROM Account WHERE Id = ? AND Name LIKE ?" {
		t.Fatalf("template: %q", got)
	}
	want := []types.Value{types.NewInt(7), types.NewString("a%")}
	if len(vals) != len(want) {
		t.Fatalf("vals: %v", vals)
	}
	for i := range want {
		if c, err := types.Compare(vals[i], want[i]); err != nil || c != 0 {
			t.Fatalf("val %d: %v want %v (err %v)", i, vals[i], want[i], err)
		}
	}
}

func TestExtractParamsUpdateOrder(t *testing.T) {
	// SET values extract before WHERE values: binding order is the
	// deterministic walk order.
	st := mustParse(t, "UPDATE t SET a = 10, b = a + 20 WHERE id = 30")
	vals, ok := ExtractParams(st)
	if !ok {
		t.Fatal("not extracted")
	}
	if got := st.String(); got != "UPDATE t SET a = ?, b = a + ? WHERE id = ?" {
		t.Fatalf("template: %q", got)
	}
	wantInts := []int64{10, 20, 30}
	for i, w := range wantInts {
		if vals[i].Int != w {
			t.Fatalf("val %d = %v, want %d", i, vals[i], w)
		}
	}
}

func TestExtractParamsDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM t WHERE a IN (1, 2, 3)")
	vals, ok := ExtractParams(st)
	if !ok || len(vals) != 3 {
		t.Fatalf("ok=%v vals=%v", ok, vals)
	}
	if got := st.String(); got != "DELETE FROM t WHERE a IN (?, ?, ?)" {
		t.Fatalf("template: %q", got)
	}
}

func TestExtractParamsRefusals(t *testing.T) {
	cases := []string{
		// Already parameterized: caller's indexes must not shift.
		"SELECT * FROM t WHERE a = ? AND b = 2",
		"UPDATE t SET a = ? WHERE b = 5",
		// A param hiding in a subquery blocks extraction too.
		"SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE c = ?) AND d = 3",
		// Nothing extractable.
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a = b",
		"DELETE FROM t",
		// INSERT is never canonicalized (value-dependent rewrites).
		"INSERT INTO t VALUES (1, 2)",
		// Transaction control and DDL are never canonicalized.
		"BEGIN",
		"CREATE TABLE t (a INT)",
	}
	for _, src := range cases {
		st := mustParse(t, src)
		before := st.String()
		if vals, ok := ExtractParams(st); ok {
			t.Errorf("%q extracted %v", src, vals)
		}
		if st.String() != before {
			t.Errorf("%q mutated to %q despite refusal", before, st.String())
		}
	}
}

func TestExtractParamsSkipsProjectionAndSubqueries(t *testing.T) {
	// Literals in the projection, GROUP BY, ORDER BY, and inside
	// subqueries stay inlined: only WHERE/HAVING positions extract.
	src := "SELECT a + 1 FROM t WHERE b = 2 AND c IN (SELECT d FROM u WHERE e = 3) GROUP BY a + 1 HAVING COUNT(*) > 4 ORDER BY a + 1"
	st := mustParse(t, src)
	vals, ok := ExtractParams(st)
	if !ok {
		t.Fatal("not extracted")
	}
	want := "SELECT a + 1 FROM t WHERE b = ? AND c IN (SELECT d FROM u WHERE e = 3) GROUP BY a + 1 HAVING COUNT(*) > ? ORDER BY a + 1"
	if got := st.String(); got != want {
		t.Fatalf("template:\n got %q\nwant %q", got, want)
	}
	if len(vals) != 2 || vals[0].Int != 2 || vals[1].Int != 4 {
		t.Fatalf("vals: %v", vals)
	}
}

func TestExtractParamsTemplateCollision(t *testing.T) {
	// Two statements differing only in literal values must canonicalize
	// to the same template text with different bindings — that is the
	// cache-hit property everything rests on.
	a := mustParse(t, "SELECT * FROM t WHERE id = 1")
	b := mustParse(t, "SELECT * FROM t WHERE id = 99")
	va, _ := ExtractParams(a)
	vb, _ := ExtractParams(b)
	if a.String() != b.String() {
		t.Fatalf("templates differ: %q vs %q", a.String(), b.String())
	}
	if va[0].Int != 1 || vb[0].Int != 99 {
		t.Fatalf("bindings: %v %v", va, vb)
	}
}

func TestExtractParamsExecEquivalence(t *testing.T) {
	// The canonical form must evaluate identically: spot-check by
	// re-rendering with the values substituted back via String() of a
	// re-parse. (Full engine-level equivalence is covered in core's
	// rewrite-cache tests.)
	src := "UPDATE Account SET Attr01 = Attr01 + 1 WHERE Id = 5"
	st := mustParse(t, src)
	vals, ok := ExtractParams(st)
	if !ok || len(vals) != 2 {
		t.Fatalf("ok=%v vals=%v", ok, vals)
	}
	if vals[0].Int != 1 || vals[1].Int != 5 {
		t.Fatalf("vals: %v", vals)
	}
}
