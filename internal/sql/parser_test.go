package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// roundTrip parses src, prints the AST, reparses, and reprints; the two
// printed forms must agree. This is the property the transformation
// layer relies on: printed SQL must mean what the AST means.
func roundTrip(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	printed := st.String()
	st2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q (from %q): %v", printed, src, err)
	}
	if st2.String() != printed {
		t.Fatalf("print not stable:\n  1st: %s\n  2nd: %s", printed, st2.String())
	}
	return st
}

func TestParseSelectBasic(t *testing.T) {
	st := roundTrip(t, "SELECT Beds FROM Account17 WHERE Hospital = 'State'")
	sel := st.(*SelectStmt)
	if len(sel.Items) != 1 || sel.Items[0].Expr.(*ColumnRef).Name != "Beds" {
		t.Errorf("items: %+v", sel.Items)
	}
	nt := sel.From[0].(*NamedTable)
	if nt.Name != "Account17" {
		t.Errorf("from: %+v", nt)
	}
	w := sel.Where.(*BinaryExpr)
	if w.Op != OpEq || w.R.(*Literal).Val.Str != "State" {
		t.Errorf("where: %+v", w)
	}
}

func TestParseSelectFull(t *testing.T) {
	src := "SELECT t.a, COUNT(*) AS n, SUM(t.b + 1) FROM tab t WHERE t.a >= 10 AND t.c IS NOT NULL " +
		"GROUP BY t.a HAVING COUNT(*) > 2 ORDER BY n DESC, t.a LIMIT 5"
	st := roundTrip(t, src)
	sel := st.(*SelectStmt)
	if !strings.EqualFold(sel.Items[1].Alias, "n") || len(sel.GroupBy) != 1 ||
		sel.Having == nil || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || *sel.Limit != 5 {
		t.Errorf("parsed: %s", sel)
	}
}

func TestParseStarForms(t *testing.T) {
	sel := roundTrip(t, "SELECT * FROM t").(*SelectStmt)
	if !sel.Items[0].Star {
		t.Error("bare star")
	}
	sel = roundTrip(t, "SELECT p.*, c.x FROM p, c").(*SelectStmt)
	if !sel.Items[0].Star || sel.Items[0].StarQualifier != "p" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
}

func TestParseJoins(t *testing.T) {
	sel := roundTrip(t, "SELECT a FROM p JOIN c ON p.id = c.parent LEFT JOIN d ON d.x = c.y").(*SelectStmt)
	j := sel.From[0].(*JoinTable)
	if j.Type != LeftJoin {
		t.Errorf("outer join type: %v", j.Type)
	}
	inner := j.Left.(*JoinTable)
	if inner.Type != InnerJoin || inner.Left.(*NamedTable).Name != "p" {
		t.Errorf("inner: %+v", inner)
	}
}

func TestParseCommaJoinWithAliases(t *testing.T) {
	sel := roundTrip(t, "SELECT s.Str1, i.Int1 FROM Pivotstr s, Pivotint i WHERE s.Row = i.Row").(*SelectStmt)
	if len(sel.From) != 2 {
		t.Fatalf("from: %+v", sel.From)
	}
	if sel.From[0].(*NamedTable).Alias != "s" || sel.From[1].(*NamedTable).Alias != "i" {
		t.Errorf("aliases: %+v", sel.From)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	// The paper's generic transformation (Q1^Chunk).
	src := "SELECT Beds FROM (SELECT Str1 AS Hospital, Int1 AS Beds FROM Chunkintstr " +
		"WHERE Tenant = 17 AND Table = 0 AND Chunk = 1) AS Account17 WHERE Hospital = 'State'"
	sel := roundTrip(t, src).(*SelectStmt)
	sub := sel.From[0].(*SubqueryTable)
	if sub.Alias != "Account17" {
		t.Errorf("alias: %q", sub.Alias)
	}
	if len(sub.Select.Items) != 2 || sub.Select.Items[0].Alias != "Hospital" {
		t.Errorf("subquery items: %+v", sub.Select.Items)
	}
}

func TestKeywordishColumnNames(t *testing.T) {
	// Table, Chunk, Row are ordinary identifiers in this dialect.
	sel := roundTrip(t, "SELECT Tenant, Table, Chunk, Row FROM Chunkdata WHERE Table = 0").(*SelectStmt)
	if len(sel.Items) != 4 {
		t.Errorf("items: %+v", sel.Items)
	}
}

func TestParseParams(t *testing.T) {
	sel := roundTrip(t, "SELECT a FROM t WHERE b = ? AND c > ?").(*SelectStmt)
	and := sel.Where.(*BinaryExpr)
	p1 := and.L.(*BinaryExpr).R.(*Param)
	p2 := and.R.(*BinaryExpr).R.(*Param)
	if p1.Index != 0 || p2.Index != 1 {
		t.Errorf("param indexes: %d %d", p1.Index, p2.Index)
	}
}

func TestParseLiterals(t *testing.T) {
	sel := roundTrip(t, "SELECT 1, -2, 2.5, 'it''s', NULL, TRUE, FALSE, DATE '2008-06-09' FROM t").(*SelectStmt)
	vals := make([]types.Value, len(sel.Items))
	for i, it := range sel.Items {
		vals[i] = it.Expr.(*Literal).Val
	}
	if vals[0].Int != 1 || vals[1].Int != -2 || vals[2].Float != 2.5 ||
		vals[3].Str != "it's" || !vals[4].IsNull() || !vals[5].Bool() || vals[6].Bool() ||
		vals[7].Kind != types.KindDate {
		t.Errorf("literals: %v", vals)
	}
}

func TestParsePredicates(t *testing.T) {
	roundTrip(t, "SELECT a FROM t WHERE a IN (1, 2, 3)")
	roundTrip(t, "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u WHERE c = 1)")
	roundTrip(t, "SELECT a FROM t WHERE name LIKE 'Acme%' AND b NOT LIKE '_x'")
	roundTrip(t, "SELECT a FROM t WHERE NOT (a = 1 OR b = 2) AND c IS NULL")
	roundTrip(t, "SELECT CAST(a AS INTEGER), CAST(b AS VARCHAR(100)) FROM t")
}

func TestParsePrecedence(t *testing.T) {
	sel := roundTrip(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := sel.Where.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("top op: %v", or.Op)
	}
	if or.R.(*BinaryExpr).Op != OpAnd {
		t.Error("AND should bind tighter than OR")
	}
	sel = roundTrip(t, "SELECT a + b * c - d FROM t").(*SelectStmt)
	top := sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != OpSub || top.L.(*BinaryExpr).Op != OpAdd {
		t.Errorf("arith precedence: %s", sel.Items[0].Expr)
	}
}

func TestParseArithParenPrinting(t *testing.T) {
	e, err := ParseExpr("(a + b) * c")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a + b) * c" {
		t.Errorf("printed: %s", e)
	}
	e, _ = ParseExpr("a - (b - c)")
	if e.String() != "a - (b - c)" {
		t.Errorf("right-assoc parens: %s", e)
	}
}

func TestParseInsert(t *testing.T) {
	st := roundTrip(t, "INSERT INTO Account (Aid, Name) VALUES (1, 'Acme'), (2, 'Gump')").(*InsertStmt)
	if st.Table != "Account" || len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Errorf("insert: %+v", st)
	}
	st = roundTrip(t, "INSERT INTO t VALUES (1, NULL, ?)").(*InsertStmt)
	if len(st.Columns) != 0 || len(st.Rows[0]) != 3 {
		t.Errorf("insert w/o columns: %+v", st)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := roundTrip(t, "UPDATE Account SET Name = 'X', Beds = Beds + 1 WHERE Aid = 5").(*UpdateStmt)
	if len(up.Set) != 2 || up.Set[1].Column != "Beds" {
		t.Errorf("update: %+v", up)
	}
	del := roundTrip(t, "DELETE FROM Account WHERE Aid IN (SELECT Row FROM x)").(*DeleteStmt)
	if del.Table != "Account" || del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
}

func TestParseDDL(t *testing.T) {
	ct := roundTrip(t, "CREATE TABLE Account (Aid INTEGER NOT NULL, Name VARCHAR(50), Born DATE, Ratio DOUBLE, Ok BOOLEAN)").(*CreateTableStmt)
	if len(ct.Cols) != 5 || !ct.Cols[0].NotNull || ct.Cols[1].Type.Width != 50 {
		t.Errorf("create table: %+v", ct)
	}
	roundTrip(t, "CREATE TABLE IF NOT EXISTS t (a INTEGER)")
	ci := roundTrip(t, "CREATE UNIQUE INDEX pk ON Account (Tenant, Aid)").(*CreateIndexStmt)
	if !ci.Unique || len(ci.Columns) != 2 {
		t.Errorf("create index: %+v", ci)
	}
	roundTrip(t, "DROP TABLE Account")
	roundTrip(t, "DROP TABLE IF EXISTS Account")
	roundTrip(t, "DROP INDEX pk ON Account")
	al := roundTrip(t, "ALTER TABLE Account ADD COLUMN Dealers INTEGER").(*AlterAddColumnStmt)
	if al.Col.Name != "Dealers" {
		t.Errorf("alter: %+v", al)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM (SELECT b FROM u)", // derived table without alias
		"INSERT INTO t",
		"INSERT INTO t VALUES 1",
		"UPDATE t SET",
		"CREATE TABLE t",
		"CREATE TABLE t (a NOTATYPE)",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a b c FROM t",
		"SELECT a FROM t WHERE x ! y",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTrailingSemicolonAndComments(t *testing.T) {
	roundTrip(t, "SELECT a FROM t;")
	st, err := Parse("SELECT a -- trailing comment\nFROM t -- another\n")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).From[0].(*NamedTable).Name != "t" {
		t.Error("comment handling broke FROM")
	}
}

func TestParseDistinct(t *testing.T) {
	sel := roundTrip(t, "SELECT DISTINCT a, b FROM t").(*SelectStmt)
	if !sel.Distinct {
		t.Error("DISTINCT lost")
	}
}

func TestParseExprEntryPoint(t *testing.T) {
	e, err := ParseExpr("Tenant = 17 AND Table = 0")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != OpAnd {
		t.Errorf("got %s", e)
	}
	if _, err := ParseExpr("a = 1 extra"); err == nil {
		t.Error("trailing tokens should fail")
	}
}

func TestParenthesizedJoinTree(t *testing.T) {
	roundTrip(t, "SELECT a FROM (p JOIN c ON p.id = c.parent) JOIN d ON d.x = p.id")
}
