package sql

import (
	"strings"
	"testing"
)

// FuzzParseAlter throws mutated ALTER statements (and arbitrary junk) at
// the parser: Parse may reject anything but must never panic, and every
// statement it accepts must round-trip — String() reparses to an
// identical String(). The seeds cover the full online-evolution grammar
// (ADD COLUMN with/without NOT NULL, DROP COLUMN, ALTER COLUMN ... TYPE)
// so mutations explore the neighborhood the engine actually executes.
func FuzzParseAlter(f *testing.F) {
	seeds := []string{
		"ALTER TABLE a ADD COLUMN c INTEGER",
		"ALTER TABLE a ADD COLUMN c VARCHAR(50) NOT NULL",
		"ALTER TABLE Account ADD COLUMN Beds INT",
		"ALTER TABLE a DROP COLUMN c",
		"ALTER TABLE a ALTER COLUMN amount TYPE FLOAT",
		"ALTER TABLE a ALTER COLUMN c TYPE VARCHAR(9)",
		"ALTER TABLE",
		"ALTER TABLE a ADD COLUMN",
		"ALTER TABLE a DROP COLUMN c TYPE FLOAT",
		"alter table t add column \"q\" text",
		"ALTER TABLE é ADD COLUMN é INT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as we got here
		}
		switch st.(type) {
		case *AlterAddColumnStmt, *AlterDropColumnStmt, *AlterColumnTypeStmt:
		default:
			return // mutated into some other statement kind
		}
		// Accepted ALTERs must be a printing fixed point: what the parser
		// built prints to SQL that parses back to the same printed form.
		first := st.String()
		st2, err := Parse(first)
		if err != nil {
			t.Fatalf("round-trip of %q failed to reparse %q: %v", src, first, err)
		}
		if second := st2.String(); first != second {
			t.Fatalf("round-trip of %q not a fixed point:\nfirst  %s\nsecond %s", src, first, second)
		}
		// The printed form names the same table the input did (case-folded):
		// a parse that silently reattributes the target table is a bug.
		if !strings.Contains(strings.ToLower(first), "alter table ") {
			t.Fatalf("printed ALTER lost its prefix: %q", first)
		}
	})
}
