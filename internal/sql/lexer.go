package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output. Keywords are not distinguished
// from identifiers here — the paper's generic structures use column
// names like Table, Chunk, and Row, so keywords must stay contextual.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokParam  // ?
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "<>", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case strings.ContainsRune("(),.*=+-/;", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole input (the parser wants lookahead).
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
