// Transaction-aware row mutators. These wrap the PR 2 undo-logged
// mutators with MVCC bookkeeping: first-updater-wins conflict checks
// before any physical change, a version-chain entry (plus its pop as
// an undo action) after each one, and unique-key checks that interpret
// the physical index through the version chains — a key owned by an
// uncommitted writer is a write-write conflict, not a violation, and a
// key that is physically absent but would reappear if an uncommitted
// delete rolled back conflicts too.
package catalog

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/mvcc"
	"repro/internal/storage"
	"repro/internal/types"
)

// decodePre decodes a version-chain pre-image into a full row.
func (t *Table) decodePre(pre []byte) ([]types.Value, error) {
	row, err := types.DecodeRow(pre)
	if err != nil {
		return nil, err
	}
	for len(row) < len(t.Columns) {
		row = append(row, types.Null())
	}
	return row, nil
}

// shadowedUniqueKey reports whether key is carried by the pre-image of
// an uncommitted foreign write: the key is physically gone from the
// index, but a rollback of that writer would bring it back. Inserting
// it now must therefore conflict rather than race the outcome.
func (t *Table) shadowedUniqueKey(tx *mvcc.Txn, ix *Index, key []byte) (bool, error) {
	var derr error
	found := false
	t.Vers.UncommittedPreImages(func(rid storage.RID, writer *mvcc.Txn, pre []byte) bool {
		if writer == tx {
			return true // our own delete of this key is ours to overwrite
		}
		row, err := t.decodePre(pre)
		if err != nil {
			derr = err
			return false
		}
		if bytes.Equal(ix.KeyFor(row, rid), key) {
			found = true
			return false
		}
		return true
	})
	return found, derr
}

// checkUniqueTxn classifies a prospective unique-key insert for tx:
// nil (free), ErrWriteConflict (an uncommitted foreign write owns or
// shadows the key), or a violation error.
func (t *Table) checkUniqueTxn(tx *mvcc.Txn, ix *Index, key []byte) error {
	if rid, err := ix.Tree.Get(key); err == nil {
		if w, ok := t.Vers.NewestWriter(rid); ok && w != tx && !w.Committed() {
			return fmt.Errorf("catalog: %s: unique key held by uncommitted transaction: %w", t.Name, mvcc.ErrWriteConflict)
		}
		return fmt.Errorf("catalog: %s: unique index %s violated", t.Name, ix.Name)
	} else if !errors.Is(err, btree.ErrKeyNotFound) {
		return err
	}
	shadowed, err := t.shadowedUniqueKey(tx, ix, key)
	if err != nil {
		return err
	}
	if shadowed {
		return fmt.Errorf("catalog: %s: unique key shadowed by uncommitted delete: %w", t.Name, mvcc.ErrWriteConflict)
	}
	return nil
}

// InsertRowTxn is InsertRowUndo on behalf of a transaction. Inserts
// never hit first-updater-wins (the heap assigns a slot no uncommitted
// chain refers to, thanks to the slot pin); only unique keys can
// collide with concurrent work.
func (t *Table) InsertRowTxn(tx *mvcc.Txn, row []types.Value, u *UndoLog) (storage.RID, error) {
	if tx == nil {
		return t.InsertRowUndo(row, u)
	}
	row, err := t.normalizeRow(row)
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		if err := t.checkUniqueTxn(tx, ix, ix.KeyFor(row, storage.RID{})); err != nil {
			return storage.RID{}, err
		}
	}
	rid, err := t.Heap.Insert(types.EncodeRow(nil, row))
	if err != nil {
		return storage.RID{}, err
	}
	u.push(func() error { return t.Heap.Delete(rid) })
	t.Vers.RecordWrite(tx, rid, nil)
	u.push(func() error { t.Vers.PopWrite(tx, rid); return nil })
	for _, ix := range t.Indexes {
		key := ix.KeyFor(row, rid)
		if err := ix.Tree.Insert(key, rid); err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: index %s: %w", t.Name, ix.Name, err)
		}
		tree := ix.Tree
		u.push(func() error { return tree.Delete(key) })
	}
	return rid, nil
}

// DeleteRowTxn is DeleteRowUndo on behalf of a transaction: the
// first-updater-wins check runs before anything is touched, and the
// deleted bytes become the pre-image of a new version entry so older
// snapshots keep seeing the row.
func (t *Table) DeleteRowTxn(tx *mvcc.Txn, rid storage.RID, row []types.Value, u *UndoLog) error {
	if tx == nil {
		return t.DeleteRowUndo(rid, row, u)
	}
	if err := t.Vers.CheckWrite(tx, rid); err != nil {
		return fmt.Errorf("catalog: %s: delete %v: %w", t.Name, rid, err)
	}
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		key := ix.KeyFor(row, rid)
		if err := ix.Tree.Delete(key); err != nil {
			return fmt.Errorf("catalog: %s: index %s: %w", t.Name, ix.Name, err)
		}
		tree := ix.Tree
		u.push(func() error { return tree.Insert(key, rid) })
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	u.push(func() error { return t.Heap.Reinsert(rid, rec) })
	t.Vers.RecordWrite(tx, rid, rec)
	u.push(func() error { t.Vers.PopWrite(tx, rid); return nil })
	return nil
}

// UpdateRowsDeferredTxn is UpdateRowsDeferred on behalf of a
// transaction: every row passes first-updater-wins before the first
// physical change, every heap rewrite records its pre-image (and a
// relocation records the new RID as an uncommitted insert), and the
// deferred unique pass classifies duplicates through the chains.
func (t *Table) UpdateRowsDeferredTxn(tx *mvcc.Txn, rids []storage.RID, oldRows, newRows [][]types.Value, u *UndoLog) ([]storage.RID, error) {
	if tx == nil {
		return t.UpdateRowsDeferred(rids, oldRows, newRows, u)
	}
	for _, rid := range rids {
		if err := t.Vers.CheckWrite(tx, rid); err != nil {
			return nil, fmt.Errorf("catalog: %s: update %v: %w", t.Name, rid, err)
		}
	}
	// Shadowed-key screening for changed unique keys, before mutating.
	normRows := make([][]types.Value, len(rids))
	for i := range rids {
		nr, err := t.normalizeRow(newRows[i])
		if err != nil {
			return nil, err
		}
		normRows[i] = nr
		for _, ix := range t.Indexes {
			if !ix.Unique {
				continue
			}
			oldKey, newKey := ix.KeyFor(oldRows[i], rids[i]), ix.KeyFor(nr, rids[i])
			if bytes.Equal(oldKey, newKey) {
				continue
			}
			shadowed, err := t.shadowedUniqueKey(tx, ix, newKey)
			if err != nil {
				return nil, err
			}
			if shadowed {
				return nil, fmt.Errorf("catalog: %s: unique key shadowed by uncommitted delete: %w", t.Name, mvcc.ErrWriteConflict)
			}
		}
	}
	type pendingInsert struct {
		ix  *Index
		key []byte
		rid storage.RID
	}
	var inserts []pendingInsert
	newRIDs := make([]storage.RID, len(rids))
	for i, rid := range rids {
		nr := normRows[i]
		pre, err := t.Heap.Get(rid)
		if err != nil {
			return nil, err
		}
		newRID, err := t.updateHeapUndo(rid, nr, u)
		if err != nil {
			return nil, err
		}
		newRIDs[i] = newRID
		t.Vers.RecordWrite(tx, rid, pre)
		u.push(func() error { t.Vers.PopWrite(tx, rid); return nil })
		if newRID != rid {
			// Relocation: the new slot is an uncommitted insert; the old
			// slot's chain keeps serving the pre-image to older snapshots.
			nrid := newRID
			t.Vers.RecordWrite(tx, nrid, nil)
			u.push(func() error { t.Vers.PopWrite(tx, nrid); return nil })
		}
		for _, ix := range t.Indexes {
			oldKey := ix.KeyFor(oldRows[i], rid)
			newKey := ix.KeyFor(nr, newRID)
			if string(oldKey) == string(newKey) && rid == newRID {
				continue
			}
			tree := ix.Tree
			if err := tree.Delete(oldKey); err != nil {
				return nil, fmt.Errorf("catalog: %s: index %s delete: %w", t.Name, ix.Name, err)
			}
			u.push(func() error { return tree.Insert(oldKey, rid) })
			inserts = append(inserts, pendingInsert{ix: ix, key: newKey, rid: newRID})
		}
	}
	for _, p := range inserts {
		if err := p.ix.Tree.Insert(p.key, p.rid); err != nil {
			if errors.Is(err, btree.ErrDuplicateKey) && p.ix.Unique {
				if rid2, gerr := p.ix.Tree.Get(p.key); gerr == nil {
					if w, ok := t.Vers.NewestWriter(rid2); ok && w != tx && !w.Committed() {
						return nil, fmt.Errorf("catalog: %s: unique key held by uncommitted transaction: %w", t.Name, mvcc.ErrWriteConflict)
					}
				}
				return nil, fmt.Errorf("catalog: %s: unique index %s violated", t.Name, p.ix.Name)
			}
			return nil, fmt.Errorf("catalog: %s: index %s insert: %w", t.Name, p.ix.Name, err)
		}
		tree, key := p.ix.Tree, p.key
		u.push(func() error { return tree.Delete(key) })
	}
	return newRIDs, nil
}

// VisibleVersions enumerates the snapshot-visible bytes of rids — the
// chained-RID set the statement captured via Vers.RIDs() when its scan
// began. Versioned scans combine it with a physical scan that skips
// exactly that set: rows without a chain have one version, visible to
// everyone. Taking the capture instead of re-reading the store makes
// the statement immune to concurrent GC (a captured RID whose chain
// was collected meanwhile resolves to its heap bytes, which is the
// version such a chain left visible to every live snapshot). The
// bytes passed to fn are safe to retain.
func (t *Table) VisibleVersions(tx *mvcc.Txn, rids []storage.RID, fn func(rid storage.RID, rec []byte) error) error {
	for _, rid := range rids {
		cur, err := t.Heap.Get(rid)
		if err != nil && !errors.Is(err, storage.ErrSlotGone) {
			return err
		}
		rec, ok := t.Vers.Resolve(tx, rid, cur)
		if !ok {
			continue
		}
		if err := fn(rid, rec); err != nil {
			return err
		}
	}
	return nil
}
