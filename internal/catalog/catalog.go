// Package catalog manages physical schema objects — tables, columns,
// indexes — and implements the paper's "meta-data budget": every table
// costs a fixed amount of memory (4 KB in DB2 V9.1, §1.1), charged
// against the database's memory budget. The remainder funds the buffer
// pool, so creating more tables shrinks the cache and reproduces the
// §5 degradation as index root nodes start to thrash.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/mvcc"
	"repro/internal/schemaver"
	"repro/internal/storage"
	"repro/internal/types"
)

// DefaultMetaBytesPerTable matches the 4 KB per-table allocation the
// paper cites for IBM DB2 V9.1.
const DefaultMetaBytesPerTable = 4096

// Column describes one physical column slot. It is an alias of the
// schema-versioning package's definition: a slot may be live or Dropped
// (retained so older schema versions keep decoding its bytes — see
// internal/schemaver for the grow-only physical invariant).
type Column = schemaver.Column

// Index is a secondary or primary access path backed by a B+tree whose
// pages live in the shared buffer pool.
type Index struct {
	Name   string
	Table  string
	Cols   []int // column ordinals within the table
	Unique bool
	Tree   *btree.BTree
}

// ColNames resolves the index's column ordinals to names.
func (ix *Index) ColNames(t *Table) []string {
	out := make([]string, len(ix.Cols))
	for i, c := range ix.Cols {
		out[i] = t.Columns[c].Name
	}
	return out
}

// KeyFor builds the B+tree key for a row. Non-unique indexes append the
// RID so that every tree key is distinct (a partitioned B-tree).
func (ix *Index) KeyFor(row []types.Value, rid storage.RID) []byte {
	key := make([]byte, 0, 64)
	for _, c := range ix.Cols {
		key = types.EncodeKey(key, row[c])
	}
	if !ix.Unique {
		key = appendRID(key, rid)
	}
	return key
}

// PrefixFor builds the search prefix for the first len(vals) index
// columns.
func (ix *Index) PrefixFor(vals []types.Value) []byte {
	key := make([]byte, 0, 64)
	for _, v := range vals {
		key = types.EncodeKey(key, v)
	}
	return key
}

func appendRID(key []byte, rid storage.RID) []byte {
	key = append(key,
		byte(rid.Page>>56), byte(rid.Page>>48), byte(rid.Page>>40), byte(rid.Page>>32),
		byte(rid.Page>>24), byte(rid.Page>>16), byte(rid.Page>>8), byte(rid.Page))
	return append(key, byte(rid.Slot>>8), byte(rid.Slot))
}

// Table is a physical table: columns, heap file, and indexes. Its
// embedded RWMutex is the engine's table-level lock: statement
// execution takes RLock for reads and Lock for writes, which also
// serializes index maintenance.
type Table struct {
	Name    string
	Columns []Column
	Heap    *storage.HeapFile
	Indexes []*Index

	// Schemas is the table's schema-version chain (always non-nil).
	// Columns mirrors its newest version; snapshot transactions older
	// than an in-flight ALTER resolve their column prefix through it.
	Schemas *schemaver.Chain

	// Vers holds the table's MVCC version chains (always non-nil). The
	// heap's slot-pin hook keeps chained RIDs from being reused while a
	// chain still refers to them.
	Vers *mvcc.VersionStore

	// LazyUpgrades counts rows whose stored encoding predated the newest
	// schema and were rewritten to it by a foreground DML write.
	LazyUpgrades atomic.Int64

	Mu sync.RWMutex
}

// initVersions wires a fresh version store and its slot pin.
func (t *Table) initVersions(mgr *mvcc.Manager) {
	t.Vers = mvcc.NewStore(mgr)
	t.Heap.SetSlotPin(t.Vers.Pinned)
}

// SetWAL installs (or, with nils, removes) the statement's WAL loggers
// on the table's heap file and every index tree. The engine calls it
// under the table write lock at statement start and clears it at
// statement end, so redo records carry the owning statement's ID.
func (t *Table) SetWAL(h storage.HeapLogger, tl btree.Logger) {
	t.Heap.SetLogger(h)
	for _, ix := range t.Indexes {
		ix.Tree.SetLogger(tl)
	}
}

// ColIndex returns the ordinal of the named column, or -1. Dropped
// slots are unaddressable (their name may be reused by a later ADD
// COLUMN), so they never match.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if !c.Dropped && strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			return ix
		}
	}
	return nil
}

// normalizeRow validates arity and types, padding short rows (from
// before an ALTER TABLE ADD COLUMN) with NULLs and coercing INT
// literals into FLOAT columns.
func (t *Table) normalizeRow(row []types.Value) ([]types.Value, error) {
	if len(row) > len(t.Columns) {
		return nil, fmt.Errorf("catalog: %s: row has %d values for %d columns", t.Name, len(row), len(t.Columns))
	}
	out := make([]types.Value, len(t.Columns))
	copy(out, row)
	for i := range out {
		c := t.Columns[i]
		if c.Dropped {
			// A dropped slot stores nothing going forward; its declared
			// type and NOT NULL constraint died with the column.
			out[i] = types.Null()
			continue
		}
		v := out[i]
		if v.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("catalog: %s.%s: NULL in NOT NULL column", t.Name, c.Name)
			}
			continue
		}
		if v.Kind != c.Type.Kind {
			if c.Type.Kind == types.KindFloat && v.Kind == types.KindInt {
				out[i] = types.NewFloat(float64(v.Int))
				continue
			}
			cv, err := types.Cast(v, c.Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("catalog: %s.%s: %w", t.Name, c.Name, err)
			}
			out[i] = cv
		}
	}
	return out, nil
}

// InsertRow validates, stores, and indexes a row, returning its RID.
// The caller must hold the table write lock. The row is inserted
// all-or-nothing: a failure partway (index error, I/O fault) rolls the
// already-applied sub-steps back.
func (t *Table) InsertRow(row []types.Value) (storage.RID, error) {
	u := &UndoLog{}
	rid, err := t.InsertRowUndo(row, u)
	if err != nil {
		return storage.RID{}, errors.Join(err, u.Rollback())
	}
	return rid, nil
}

// InsertRowUndo is InsertRow logging each applied sub-step into u; on
// error the caller owns rolling u back (statement-level atomicity
// composes multiple rows into one undo scope).
func (t *Table) InsertRowUndo(row []types.Value, u *UndoLog) (storage.RID, error) {
	row, err := t.normalizeRow(row)
	if err != nil {
		return storage.RID{}, err
	}
	// Unique checks first, so a violation leaves no debris.
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		if _, err := ix.Tree.Get(ix.KeyFor(row, storage.RID{})); err == nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: unique index %s violated", t.Name, ix.Name)
		} else if !errors.Is(err, btree.ErrKeyNotFound) {
			return storage.RID{}, err
		}
	}
	rid, err := t.Heap.Insert(types.EncodeRow(nil, row))
	if err != nil {
		return storage.RID{}, err
	}
	u.push(func() error { return t.Heap.Delete(rid) })
	for _, ix := range t.Indexes {
		key := ix.KeyFor(row, rid)
		if err := ix.Tree.Insert(key, rid); err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: index %s: %w", t.Name, ix.Name, err)
		}
		tree := ix.Tree
		u.push(func() error { return tree.Delete(key) })
	}
	return rid, nil
}

// GetRow fetches and decodes the row at rid, padding with NULLs if the
// schema has grown since the row was written.
func (t *Table) GetRow(rid storage.RID) ([]types.Value, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return nil, err
	}
	row, err := types.DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	for len(row) < len(t.Columns) {
		row = append(row, types.Null())
	}
	return row, nil
}

// GetRowInto is GetRow decoding into dst (whose backing storage is
// reused) and materializing only the columns marked in need (nil = all;
// the rest come back as NULL). It skips both the record copy and the
// per-value allocations of GetRow: the record is decoded while its page
// stays pinned. Returns the row plus the decoded/skipped value counts
// for the engine's decode-savings counters.
func (t *Table) GetRowInto(dst []types.Value, rid storage.RID, need []bool) (row []types.Value, decoded, skipped int, err error) {
	verr := t.Heap.View(rid, func(rec []byte) error {
		var derr error
		row, decoded, skipped, derr = types.DecodeRowPartial(dst, rec, need, len(t.Columns))
		return derr
	})
	if verr != nil {
		return nil, 0, 0, verr
	}
	return row, decoded, skipped, nil
}

// DeleteRow removes the row (whose current contents must be supplied
// for index maintenance). Caller holds the write lock. The delete is
// all-or-nothing: a failure partway restores the removed index entries
// and row bytes.
func (t *Table) DeleteRow(rid storage.RID, row []types.Value) error {
	u := &UndoLog{}
	if err := t.DeleteRowUndo(rid, row, u); err != nil {
		return errors.Join(err, u.Rollback())
	}
	return nil
}

// DeleteRowUndo is DeleteRow logging each applied sub-step into u; on
// error the caller owns rolling u back.
func (t *Table) DeleteRowUndo(rid storage.RID, row []types.Value, u *UndoLog) error {
	// Snapshot the stored bytes first: undo restores the record exactly
	// as it was, not a re-encoding of the (possibly NULL-padded) row.
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		key := ix.KeyFor(row, rid)
		if err := ix.Tree.Delete(key); err != nil {
			return fmt.Errorf("catalog: %s: index %s: %w", t.Name, ix.Name, err)
		}
		tree := ix.Tree
		u.push(func() error { return tree.Insert(key, rid) })
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	u.push(func() error { return t.Heap.Reinsert(rid, rec) })
	return nil
}

// UpdateRow rewrites the row, maintaining indexes, and returns the
// possibly-relocated RID. Caller holds the write lock. The update is
// all-or-nothing: a failure partway restores the heap bytes and every
// index entry.
func (t *Table) UpdateRow(rid storage.RID, oldRow, newRow []types.Value) (storage.RID, error) {
	u := &UndoLog{}
	newRID, err := t.UpdateRowUndo(rid, oldRow, newRow, u)
	if err != nil {
		return storage.RID{}, errors.Join(err, u.Rollback())
	}
	return newRID, nil
}

// UpdateRowUndo is UpdateRow logging each applied sub-step into u; on
// error the caller owns rolling u back. Unique checks are immediate
// (single-row semantics); multi-row statements use UpdateRowsDeferred.
func (t *Table) UpdateRowUndo(rid storage.RID, oldRow, newRow []types.Value, u *UndoLog) (storage.RID, error) {
	newRow, err := t.normalizeRow(newRow)
	if err != nil {
		return storage.RID{}, err
	}
	// Unique checks for changed keys.
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		oldKey, newKey := ix.KeyFor(oldRow, rid), ix.KeyFor(newRow, rid)
		if string(oldKey) == string(newKey) {
			continue
		}
		if _, err := ix.Tree.Get(newKey); err == nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: unique index %s violated", t.Name, ix.Name)
		} else if !errors.Is(err, btree.ErrKeyNotFound) {
			return storage.RID{}, err
		}
	}
	newRID, err := t.updateHeapUndo(rid, newRow, u)
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.Indexes {
		oldKey := ix.KeyFor(oldRow, rid)
		newKey := ix.KeyFor(newRow, newRID)
		if string(oldKey) == string(newKey) && rid == newRID {
			continue
		}
		tree := ix.Tree
		if err := tree.Delete(oldKey); err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: index %s delete: %w", t.Name, ix.Name, err)
		}
		u.push(func() error { return tree.Insert(oldKey, rid) })
		if err := tree.Insert(newKey, newRID); err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s: index %s insert: %w", t.Name, ix.Name, err)
		}
		u.push(func() error { return tree.Delete(newKey) })
	}
	return newRID, nil
}

// updateHeapUndo rewrites the stored bytes of one row, returning the
// possibly-relocated RID, and logs the exact reverse: an in-place
// restore of the original bytes, or re-insertion at the original RID
// plus deletion of the relocated copy.
func (t *Table) updateHeapUndo(rid storage.RID, newRow []types.Value, u *UndoLog) (storage.RID, error) {
	oldRec, err := t.Heap.Get(rid)
	if err != nil {
		return storage.RID{}, err
	}
	// Lazy schema upgrade accounting: a write always re-encodes the full
	// current-width row, so touching a row that predates the newest
	// schema migrates it as a side effect.
	if arity, n := binary.Uvarint(oldRec); n > 0 && int(arity) < len(t.Columns) {
		t.LazyUpgrades.Add(1)
	}
	newRID, err := t.Heap.Update(rid, types.EncodeRow(nil, newRow))
	if err != nil {
		return storage.RID{}, err
	}
	u.push(func() error {
		if newRID == rid {
			// The page held oldRec before this statement, so the in-place
			// restore is guaranteed to fit after compaction.
			back, err := t.Heap.Update(rid, oldRec)
			if err != nil {
				return err
			}
			if back != rid {
				return fmt.Errorf("catalog: %s: undo relocated row %v to %v", t.Name, rid, back)
			}
			return nil
		}
		if err := t.Heap.Reinsert(rid, oldRec); err != nil {
			return err
		}
		return t.Heap.Delete(newRID)
	})
	return newRID, nil
}

// UpdateRowsDeferred applies one UPDATE statement's whole row set with
// unique checks deferred to a final index-insert pass: every changed
// index entry is removed (and every heap row rewritten) before any new
// entry is inserted, so a statement like UPDATE t SET k = k+1 over a
// dense unique key succeeds regardless of the order rows were scanned
// in. A duplicate in the deferred pass is a genuine violation — either
// with an untouched row or between two updated rows. All sub-steps are
// logged into u; on error the caller owns rolling u back.
func (t *Table) UpdateRowsDeferred(rids []storage.RID, oldRows, newRows [][]types.Value, u *UndoLog) ([]storage.RID, error) {
	type pendingInsert struct {
		ix  *Index
		key []byte
		rid storage.RID
	}
	var inserts []pendingInsert
	newRIDs := make([]storage.RID, len(rids))
	for i, rid := range rids {
		nr, err := t.normalizeRow(newRows[i])
		if err != nil {
			return nil, err
		}
		newRID, err := t.updateHeapUndo(rid, nr, u)
		if err != nil {
			return nil, err
		}
		newRIDs[i] = newRID
		for _, ix := range t.Indexes {
			oldKey := ix.KeyFor(oldRows[i], rid)
			newKey := ix.KeyFor(nr, newRID)
			if string(oldKey) == string(newKey) && rid == newRID {
				continue
			}
			tree := ix.Tree
			if err := tree.Delete(oldKey); err != nil {
				return nil, fmt.Errorf("catalog: %s: index %s delete: %w", t.Name, ix.Name, err)
			}
			u.push(func() error { return tree.Insert(oldKey, rid) })
			inserts = append(inserts, pendingInsert{ix: ix, key: newKey, rid: newRID})
		}
	}
	for _, p := range inserts {
		if err := p.ix.Tree.Insert(p.key, p.rid); err != nil {
			if errors.Is(err, btree.ErrDuplicateKey) && p.ix.Unique {
				return nil, fmt.Errorf("catalog: %s: unique index %s violated", t.Name, p.ix.Name)
			}
			return nil, fmt.Errorf("catalog: %s: index %s insert: %w", t.Name, p.ix.Name, err)
		}
		tree, key := p.ix.Tree, p.key
		u.push(func() error { return tree.Delete(key) })
	}
	return newRIDs, nil
}

// Config parameterizes a Catalog.
type Config struct {
	// MemoryBytes is the machine's database memory budget; the buffer
	// pool gets what the table meta-data does not consume.
	MemoryBytes int64
	// MetaBytesPerTable is the per-table meta-data cost (default 4 KB).
	MetaBytesPerTable int64
	// InsertMode selects the heap placement policy for new tables.
	InsertMode storage.InsertMode
	// Versions, when set, registers each table's version store with the
	// transaction manager so end-of-transaction sweeps can collect them.
	Versions *mvcc.Manager
}

// Catalog owns the table namespace and the meta-data budget.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	pool   *storage.BufferPool
	cfg    Config

	version  atomic.Int64
	schemaTS atomic.Uint64
}

// New creates a catalog over pool.
func New(pool *storage.BufferPool, cfg Config) *Catalog {
	if cfg.MetaBytesPerTable == 0 {
		cfg.MetaBytesPerTable = DefaultMetaBytesPerTable
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 64 << 20
	}
	c := &Catalog{tables: make(map[string]*Table), pool: pool, cfg: cfg}
	c.rebudget()
	return c
}

func key(name string) string { return strings.ToLower(name) }

// rebudget recomputes the buffer pool capacity from the memory budget
// minus the meta-data tax. Caller may hold c.mu.
func (c *Catalog) rebudget() {
	meta := int64(len(c.tables)) * c.cfg.MetaBytesPerTable
	c.pool.SetCapacityBytes(c.cfg.MemoryBytes - meta)
}

// MetaBytes returns the current meta-data consumption.
func (c *Catalog) MetaBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.tables)) * c.cfg.MetaBytesPerTable
}

// NumTables returns the table count.
func (c *Catalog) NumTables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// CreateTable registers a new table.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.version.Add(1)
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		k := strings.ToLower(col.Name)
		if seen[k] {
			return nil, fmt.Errorf("catalog: duplicate column %s in %s", col.Name, name)
		}
		seen[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key(name)]; exists {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
		Heap:    storage.NewHeapFile(c.pool, c.cfg.InsertMode),
		Schemas: schemaver.NewChain(cols),
	}
	t.initVersions(c.cfg.Versions)
	c.tables[key(name)] = t
	c.rebudget()
	return t, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no such table %s", name)
	}
	return t, nil
}

// HasTable reports whether a table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// TableNames returns all table names (unordered).
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}

// DropTable removes the table, its heap, and its indexes, freeing the
// pages immediately (the non-WAL path).
func (c *Catalog) DropTable(name string) error {
	c.version.Add(1)
	c.mu.Lock()
	t, ok := c.tables[key(name)]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("catalog: no such table %s", name)
	}
	delete(c.tables, key(name))
	c.rebudget()
	c.mu.Unlock()

	t.Mu.Lock()
	defer t.Mu.Unlock()
	for _, ix := range t.Indexes {
		if err := ix.Tree.Drop(); err != nil {
			return err
		}
	}
	t.Indexes = nil
	return t.Heap.Drop()
}

// DropTableDeferred removes the table from the namespace but frees no
// pages: it returns the heap and index page lists so the caller can log
// the frees and perform them only after its commit record is durable —
// redo-only recovery cannot resurrect pages an uncommitted drop already
// destroyed.
func (c *Catalog) DropTableDeferred(name string) (dataPages, indexPages []storage.PageID, err error) {
	c.version.Add(1)
	c.mu.Lock()
	t, ok := c.tables[key(name)]
	if !ok {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("catalog: no such table %s", name)
	}
	delete(c.tables, key(name))
	c.rebudget()
	c.mu.Unlock()

	t.Mu.Lock()
	defer t.Mu.Unlock()
	for _, ix := range t.Indexes {
		pages, perr := ix.Tree.Pages()
		if perr != nil {
			return nil, nil, perr
		}
		indexPages = append(indexPages, pages...)
	}
	t.Indexes = nil
	return t.Heap.Release(), indexPages, nil
}

// CreateIndex builds a new index over existing rows.
func (c *Catalog) CreateIndex(tableName, indexName string, colNames []string, unique bool) (*Index, error) {
	return c.CreateIndexLogged(tableName, indexName, colNames, unique, nil)
}

// CreateIndexLogged is CreateIndex with a WAL logger installed on the
// tree from birth, so the root allocation and every backfill insert
// (including splits) land in the log under the creating statement.
func (c *Catalog) CreateIndexLogged(tableName, indexName string, colNames []string, unique bool, lg btree.Logger) (*Index, error) {
	c.version.Add(1)
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	if t.Index(indexName) != nil {
		return nil, fmt.Errorf("catalog: index %s already exists on %s", indexName, tableName)
	}
	cols := make([]int, len(colNames))
	for i, n := range colNames {
		ord := t.ColIndex(n)
		if ord < 0 {
			return nil, fmt.Errorf("catalog: no column %s in %s", n, tableName)
		}
		cols[i] = ord
	}
	tree, err := btree.NewLogged(c.pool, lg)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: indexName, Table: t.Name, Cols: cols, Unique: unique, Tree: tree}
	// Backfill from existing rows.
	err = t.Heap.Scan(func(rid storage.RID, rec []byte) (bool, error) {
		row, err := types.DecodeRow(rec)
		if err != nil {
			return false, err
		}
		for len(row) < len(t.Columns) {
			row = append(row, types.Null())
		}
		if err := tree.Insert(ix.KeyFor(row, rid), rid); err != nil {
			if errors.Is(err, btree.ErrDuplicateKey) && unique {
				return false, fmt.Errorf("catalog: existing rows violate unique index %s", indexName)
			}
			return false, err
		}
		return true, nil
	})
	if err != nil {
		tree.Drop()
		return nil, err
	}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// AdoptIndex registers an index over an ALREADY-BUILT tree rooted at
// root — the replica's replay of a committed create_index DDLChange,
// where every tree page (root allocation, backfill inserts, splits) was
// already materialized by the physical redo stream. Unlike
// CreateIndexLogged it scans nothing and logs nothing. Call
// Tree.RecountSize afterwards to rebuild the entry count.
func (c *Catalog) AdoptIndex(tableName, indexName string, cols []int, unique bool, root storage.PageID) (*Index, error) {
	c.version.Add(1)
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	if t.Index(indexName) != nil {
		return nil, fmt.Errorf("catalog: index %s already exists on %s", indexName, tableName)
	}
	for _, ord := range cols {
		if ord < 0 || ord >= len(t.Columns) {
			return nil, fmt.Errorf("catalog: index %s column ordinal %d out of range on %s", indexName, ord, tableName)
		}
	}
	ix := &Index{Name: indexName, Table: t.Name, Cols: append([]int(nil), cols...),
		Unique: unique, Tree: btree.Restore(c.pool, root)}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// DropIndex removes an index from a table, freeing its pages
// immediately (the non-WAL path).
func (c *Catalog) DropIndex(tableName, indexName string) error {
	c.version.Add(1)
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	for i, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, indexName) {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return ix.Tree.Drop()
		}
	}
	return fmt.Errorf("catalog: no index %s on %s", indexName, tableName)
}

// DropIndexDeferred removes the index from the table but frees no
// pages, returning them for commit-deferred freeing (see
// DropTableDeferred).
func (c *Catalog) DropIndexDeferred(tableName, indexName string) ([]storage.PageID, error) {
	c.version.Add(1)
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	for i, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, indexName) {
			pages, perr := ix.Tree.Pages()
			if perr != nil {
				return nil, perr
			}
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return pages, nil
		}
	}
	return nil, fmt.Errorf("catalog: no index %s on %s", indexName, tableName)
}

// AddColumn appends a nullable column to the table. Existing rows read
// back with NULL in the new position — a pure meta-data change, which
// is what lets generic layouts do on-line schema evolution. This is the
// offline (DDL-fenced) path: no snapshot can be in flight, so the
// schema chain's head is rewritten in place rather than versioned.
func (c *Catalog) AddColumn(tableName string, col Column) error {
	c.version.Add(1)
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	t.Mu.Lock()
	defer t.Mu.Unlock()
	cols, err := t.ComputeAddColumn(col)
	if err != nil {
		return err
	}
	t.Columns = cols
	t.Schemas.SetLatest(cols)
	return nil
}

// --- online schema evolution ---------------------------------------------------
//
// The Compute* methods validate one ALTER against the table's newest
// schema and return the resulting column slice without mutating
// anything; PublishSchema makes it the newest version under a commit
// stamp. The engine calls Compute under the table's exclusive latch,
// WALs the change, stamps the commit clock, then publishes — so the
// new version's stamp is strictly newer than every snapshot begun
// before the ALTER, and those snapshots keep resolving the old prefix.
// Caller holds t.Mu exclusively for all of these.

// ComputeAddColumn validates appending a nullable column slot.
func (t *Table) ComputeAddColumn(col Column) ([]Column, error) {
	if col.NotNull {
		return nil, fmt.Errorf("catalog: ADD COLUMN must be nullable")
	}
	if col.Dropped {
		return nil, fmt.Errorf("catalog: cannot add a dropped column")
	}
	if t.ColIndex(col.Name) >= 0 {
		return nil, fmt.Errorf("catalog: column %s already exists in %s", col.Name, t.Name)
	}
	out := append([]Column(nil), t.Columns...)
	return append(out, col), nil
}

// ComputeDropColumn validates dropping a column: the slot is retained
// (flagged Dropped) so older schema versions keep decoding its bytes.
// Indexed columns cannot be dropped, nor can the last visible column.
func (t *Table) ComputeDropColumn(name string) ([]Column, error) {
	ord := t.ColIndex(name)
	if ord < 0 {
		return nil, fmt.Errorf("catalog: no column %s in %s", name, t.Name)
	}
	for _, ix := range t.Indexes {
		for _, c := range ix.Cols {
			if c == ord {
				return nil, fmt.Errorf("catalog: cannot drop %s.%s: referenced by index %s", t.Name, name, ix.Name)
			}
		}
	}
	visible := 0
	for _, c := range t.Columns {
		if !c.Dropped {
			visible++
		}
	}
	if visible <= 1 {
		return nil, fmt.Errorf("catalog: cannot drop the last column of %s", t.Name)
	}
	out := append([]Column(nil), t.Columns...)
	out[ord].Dropped = true
	return out, nil
}

// ComputeWidenColumn validates widening a column's declared type in
// place. Only INT -> FLOAT is a widening here: every stored INT value
// is exactly representable (values are self-describing and coerce on
// read), and the order-preserving key encoding of INT n equals that of
// FLOAT n, so even indexed columns need no key maintenance. (Integers
// beyond 2^53 lose precision once physically rewritten — the usual
// IEEE-754 caveat.)
func (t *Table) ComputeWidenColumn(name string, typ types.ColumnType) ([]Column, error) {
	ord := t.ColIndex(name)
	if ord < 0 {
		return nil, fmt.Errorf("catalog: no column %s in %s", name, t.Name)
	}
	cur := t.Columns[ord].Type
	if cur.Kind == typ.Kind && cur.Width == typ.Width {
		return nil, fmt.Errorf("catalog: %s.%s is already %s", t.Name, name, typ)
	}
	if cur.Kind != types.KindInt || typ.Kind != types.KindFloat {
		return nil, fmt.Errorf("catalog: cannot widen %s.%s from %s to %s (only INT -> FLOAT)", t.Name, name, cur, typ)
	}
	out := append([]Column(nil), t.Columns...)
	out[ord].Type = typ
	return out, nil
}

// PublishSchema installs cols as the table's newest schema version
// under commit stamp ts and bumps the catalog version. Caller holds
// t.Mu exclusively; every reader of t.Columns holds at least a shared
// latch (or the engine's exclusive DDL fence), so the swap is safe.
func (c *Catalog) PublishSchema(t *Table, cols []Column, ts uint64) int64 {
	ver := t.Schemas.Publish(cols, ts)
	t.Columns = cols
	for {
		old := c.schemaTS.Load()
		if ts <= old || c.schemaTS.CompareAndSwap(old, ts) {
			break
		}
	}
	c.version.Add(1)
	return ver
}

// SchemaTS returns the commit stamp of the newest published schema
// version across all tables (0 if none was ever published online). A
// pinned snapshot older than this must resolve schemas through the
// version chains instead of the cached latest plans.
func (c *Catalog) SchemaTS() uint64 { return c.schemaTS.Load() }

// Version returns the schema version, bumped by every DDL operation.
// Plan caches key on it to invalidate after on-line schema changes.
func (c *Catalog) Version() int64 {
	return c.version.Load()
}
