// Statement-level undo. Every table mutator logs, immediately after
// each physical sub-step succeeds, a logical action that exactly
// reverses it (un-insert this RID, restore these row bytes, revert this
// index entry). When a statement fails partway, the executor replays
// the log in reverse — still holding the table write lock — so
// INSERT/UPDATE/DELETE are all-or-nothing even though the heap and the
// B+tree indexes are mutated in separate steps.
package catalog

import (
	"errors"
	"fmt"
)

// UndoLog accumulates the logical undo actions of one DML statement.
// The zero value is ready to use. A nil *UndoLog is valid and records
// nothing (for callers that do their own cleanup).
type UndoLog struct {
	actions []func() error
}

// push appends an undo action. Safe on a nil log.
func (u *UndoLog) push(fn func() error) {
	if u != nil {
		u.actions = append(u.actions, fn)
	}
}

// Len returns the number of recorded actions.
func (u *UndoLog) Len() int {
	if u == nil {
		return 0
	}
	return len(u.actions)
}

// Mark returns the current position; RollbackTo(Mark()) later undoes
// exactly the actions recorded in between. Statement boundaries inside
// a transaction, and SAVEPOINTs, are marks into one shared log.
func (u *UndoLog) Mark() int { return u.Len() }

// Rollback replays every recorded action in reverse (LIFO) order and
// clears the log. See RollbackTo for the failure contract.
func (u *UndoLog) Rollback() error {
	_, err := u.RollbackTo(0)
	return err
}

// RollbackTo replays the actions recorded after mark in reverse (LIFO)
// order and truncates the log back to mark. LIFO matters: it
// guarantees, for example, that a page slot is free again before the
// record it held is restored. All actions in the range are attempted
// even if one fails; the number of failed steps is returned exactly
// (so callers can account a failed rollback as failed, not as a clean
// one), failures are joined into the returned error, and a non-nil
// return means the table may be inconsistent (CheckInvariants reports
// how).
func (u *UndoLog) RollbackTo(mark int) (failed int, err error) {
	if u == nil {
		return 0, nil
	}
	if mark < 0 {
		mark = 0
	}
	var errs []error
	for i := len(u.actions) - 1; i >= mark; i-- {
		if aerr := u.actions[i](); aerr != nil {
			failed++
			errs = append(errs, aerr)
		}
	}
	u.actions = u.actions[:mark]
	if len(errs) > 0 {
		return failed, fmt.Errorf("catalog: rollback failed: %w", errors.Join(errs...))
	}
	return 0, nil
}

// TruncateTo drops the actions recorded after mark without running
// them (RELEASE-style; also used when a savepoint is superseded).
func (u *UndoLog) TruncateTo(mark int) {
	if u != nil && mark >= 0 && mark <= len(u.actions) {
		u.actions = u.actions[:mark]
	}
}

// Discard drops the recorded actions without running them (the
// statement committed).
func (u *UndoLog) Discard() {
	if u != nil {
		u.actions = u.actions[:0]
	}
}
