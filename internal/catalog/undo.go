// Statement-level undo. Every table mutator logs, immediately after
// each physical sub-step succeeds, a logical action that exactly
// reverses it (un-insert this RID, restore these row bytes, revert this
// index entry). When a statement fails partway, the executor replays
// the log in reverse — still holding the table write lock — so
// INSERT/UPDATE/DELETE are all-or-nothing even though the heap and the
// B+tree indexes are mutated in separate steps.
package catalog

import (
	"errors"
	"fmt"
)

// UndoLog accumulates the logical undo actions of one DML statement.
// The zero value is ready to use. A nil *UndoLog is valid and records
// nothing (for callers that do their own cleanup).
type UndoLog struct {
	actions []func() error
}

// push appends an undo action. Safe on a nil log.
func (u *UndoLog) push(fn func() error) {
	if u != nil {
		u.actions = append(u.actions, fn)
	}
}

// Len returns the number of recorded actions.
func (u *UndoLog) Len() int {
	if u == nil {
		return 0
	}
	return len(u.actions)
}

// Rollback replays the recorded actions in reverse (LIFO) order and
// clears the log. LIFO matters: it guarantees, for example, that a
// page slot is free again before the record it held is restored. All
// actions are attempted even if one fails; failures are joined into
// the returned error, and a non-nil return means the table may be
// inconsistent (CheckInvariants reports how).
func (u *UndoLog) Rollback() error {
	if u == nil {
		return nil
	}
	var errs []error
	for i := len(u.actions) - 1; i >= 0; i-- {
		if err := u.actions[i](); err != nil {
			errs = append(errs, err)
		}
	}
	u.actions = u.actions[:0]
	if len(errs) > 0 {
		return fmt.Errorf("catalog: rollback failed: %w", errors.Join(errs...))
	}
	return nil
}

// Discard drops the recorded actions without running them (the
// statement committed).
func (u *UndoLog) Discard() {
	if u != nil {
		u.actions = u.actions[:0]
	}
}
