package catalog

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func TestUndoLogReverseOrderAndDiscard(t *testing.T) {
	var got []int
	u := &UndoLog{}
	for i := 0; i < 3; i++ {
		i := i
		u.push(func() error { got = append(got, i); return nil })
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d, want 3", u.Len())
	}
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 1, 0}) {
		t.Errorf("rollback order %v, want [2 1 0]", got)
	}
	if u.Len() != 0 {
		t.Error("Rollback should clear the log")
	}

	u = &UndoLog{}
	u.push(func() error { t.Error("discarded action ran"); return nil })
	u.Discard()
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestUndoLogJoinsErrors(t *testing.T) {
	e1 := errors.New("boom1")
	e2 := errors.New("boom2")
	ran := false
	u := &UndoLog{}
	u.push(func() error { ran = true; return nil })
	u.push(func() error { return e1 })
	u.push(func() error { return e2 })
	err := u.Rollback()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("rollback error should join both failures, got %v", err)
	}
	if !ran {
		t.Error("rollback must attempt every action even after a failure")
	}
}

// atomFixture builds a table with a unique index and a non-unique index
// over a pool with small pages, pre-filled with n rows, so fault sweeps
// exercise heap writes, relocations, and index splits.
func atomFixture(t *testing.T, pageSize int, n int) (*Table, *storage.BufferPool) {
	t.Helper()
	disk := storage.NewDisk(pageSize)
	pool := storage.NewBufferPool(disk, int64(pageSize)*1024)
	c := New(pool, Config{MemoryBytes: int64(pageSize) * 1024})
	tab, err := c.CreateTable("acct", []Column{
		{Name: "Aid", Type: types.IntType, NotNull: true},
		{Name: "Name", Type: types.VarcharType(40)},
		{Name: "Pad", Type: types.VarcharType(400)}, // unindexed: grows to force heap relocation
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("acct", "pk", []string{"Aid"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("acct", "byname", []string{"Name"}, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := []types.Value{types.NewInt(int64(i)), types.NewString(pad("name", i)), types.NewString("p")}
		if _, err := tab.InsertRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab, pool
}

func pad(prefix string, i int) string {
	return prefix + "-" + strings.Repeat("x", 20) + "-" + string(rune('a'+i%26))
}

// sweepOp runs op under a fault sweep for the given page category:
// attempt k = 1, 2, 3, ... each against a fresh fixture with the kth
// logical page access of that category failing. Every faulted run must
// roll back to the pre-statement state; the sweep ends when op outruns
// the fault (performs fewer than k accesses) and succeeds.
func sweepOp(t *testing.T, cat storage.Category, build func() (*Table, *storage.BufferPool), prep func(*Table) func() error) {
	t.Helper()
	const maxK = 500
	for k := int64(1); k <= maxK; k++ {
		tab, pool := build()
		op := prep(tab) // lookups happen before the fault is armed
		snap, err := tab.SnapshotRows()
		if err != nil {
			t.Fatal(err)
		}
		pool.SetFetchFault(storage.FailNthFetch(k, cat))
		opErr := op()
		pool.SetFetchFault(nil)
		if opErr == nil {
			return // fault never fired: every access point has been swept
		}
		if !errors.Is(opErr, storage.ErrInjectedFault) {
			t.Fatalf("cat %v fault %d: unexpected error %v", cat, k, opErr)
		}
		if err := tab.CheckInvariants(); err != nil {
			t.Fatalf("cat %v fault %d: invariants violated after rollback: %v", cat, k, err)
		}
		after, err := tab.SnapshotRows()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap, after) {
			t.Fatalf("cat %v fault %d: visible rows differ from pre-statement snapshot", cat, k)
		}
	}
	t.Fatalf("cat %v: op never completed fault-free within %d fault points", cat, maxK)
}

func TestInsertRowRollbackSweep(t *testing.T) {
	build := func() (*Table, *storage.BufferPool) { return atomFixture(t, 256, 40) }
	row := []types.Value{types.NewInt(1000), types.NewString(pad("fresh", 0)), types.NewString("p")}
	for _, cat := range []storage.Category{storage.CatData, storage.CatIndex} {
		sweepOp(t, cat, build, func(tab *Table) func() error {
			return func() error {
				_, err := tab.InsertRow(row)
				return err
			}
		})
	}
}

func TestDeleteRowRollbackSweep(t *testing.T) {
	build := func() (*Table, *storage.BufferPool) { return atomFixture(t, 256, 40) }
	for _, cat := range []storage.Category{storage.CatData, storage.CatIndex} {
		sweepOp(t, cat, build, func(tab *Table) func() error {
			rid, row := rowWithAid(t, tab, 17)
			return func() error { return tab.DeleteRow(rid, row) }
		})
	}
}

func TestUpdateRowRollbackSweep(t *testing.T) {
	build := func() (*Table, *storage.BufferPool) { return atomFixture(t, 256, 40) }
	for _, cat := range []storage.Category{storage.CatData, storage.CatIndex} {
		sweepOp(t, cat, build, func(tab *Table) func() error {
			rid, row := rowWithAid(t, tab, 17)
			newRow := []types.Value{types.NewInt(1017), types.NewString(pad("moved", 3)), row[2]}
			return func() error {
				_, err := tab.UpdateRow(rid, row, newRow)
				return err
			}
		})
	}
}

// The satellite scenario: a DELETE whose index entries are already gone
// when the heap delete fails. DeleteRow reads the record (1st data-page
// access), removes both index entries, then deletes the heap record
// (2nd data-page access) — failing that access must restore the index
// entries.
func TestDeleteHeapFaultAfterIndexRemoval(t *testing.T) {
	tab, pool := atomFixture(t, 256, 40)
	rid, row := rowWithAid(t, tab, 23)
	snap, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}
	pool.SetFetchFault(storage.FailNthFetch(2, storage.CatData))
	err = tab.DeleteRow(rid, row)
	pool.SetFetchFault(nil)
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("want injected fault on the heap delete, got %v", err)
	}
	// The row must still be reachable through the unique index.
	pk := tab.Index("pk")
	if _, err := pk.Tree.Get(pk.KeyFor(row, rid)); err != nil {
		t.Errorf("unique index entry not restored: %v", err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("invariants after rollback: %v", err)
	}
	after, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, after) {
		t.Error("visible rows differ from pre-statement snapshot")
	}
}

// The satellite scenario: an UPDATE whose heap relocation succeeds but
// whose index maintenance then fails. The row grows past its page so
// the heap moves it to a new RID; every index then rewrites its entry
// (same key, new RID). Failing any of those index accesses must move
// the row back and restore the old entries.
func TestUpdateRelocationIndexFaultSweep(t *testing.T) {
	const pageSize = 256
	grown := strings.Repeat("G", 180) // > half the page: cannot stay in place
	build := func() (*Table, *storage.BufferPool) { return atomFixture(t, pageSize, 40) }

	// Pre-flight without faults: prove this update really relocates.
	tab, _ := build()
	rid, row := rowWithAid(t, tab, 17)
	newRow := []types.Value{row[0], row[1], types.NewString(grown)}
	newRID, err := tab.UpdateRow(rid, row, newRow)
	if err != nil {
		t.Fatal(err)
	}
	if newRID == rid {
		t.Fatalf("fixture bug: update did not relocate (rid %v unchanged)", rid)
	}

	sweepOp(t, storage.CatIndex, build, func(tab *Table) func() error {
		rid, row := rowWithAid(t, tab, 17)
		newRow := []types.Value{row[0], row[1], types.NewString(grown)}
		return func() error {
			_, err := tab.UpdateRow(rid, row, newRow)
			return err
		}
	})
}

// UpdateRowsDeferred must shift a dense unique key regardless of the
// order rows arrive in: ascending visits each collision before it is
// cleared, which immediate checking would reject.
func TestUpdateRowsDeferredOrderIndependent(t *testing.T) {
	for _, order := range []string{"ascending", "descending"} {
		tab, _ := atomFixture(t, 512, 20)
		rids, rows := allRowsByAid(t, tab)
		if order == "descending" {
			reverse(rids)
			reverse(rows)
		}
		newRows := make([][]types.Value, len(rows))
		for i, r := range rows {
			newRows[i] = []types.Value{types.NewInt(r[0].Int + 1), r[1], r[2]}
		}
		u := &UndoLog{}
		if _, err := tab.UpdateRowsDeferred(rids, rows, newRows, u); err != nil {
			t.Fatalf("%s: k = k+1 over dense keys failed: %v", order, err)
		}
		u.Discard()
		if err := tab.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", order, err)
		}
		_, after := allRowsByAid(t, tab)
		for i, r := range after {
			if r[0].Int != int64(i+1) {
				t.Fatalf("%s: key[%d] = %d, want %d", order, i, r[0].Int, i+1)
			}
		}
	}
}

// A deferred batch that genuinely collides with an untouched row must
// fail as a unique violation and roll back completely.
func TestUpdateRowsDeferredGenuineViolation(t *testing.T) {
	tab, _ := atomFixture(t, 512, 20)
	snap, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}
	rid, row := rowWithAid(t, tab, 5)
	u := &UndoLog{}
	_, uerr := tab.UpdateRowsDeferred(
		[]storage.RID{rid},
		[][]types.Value{row},
		[][]types.Value{{types.NewInt(10), row[1], row[2]}}, // Aid 10 already exists
		u)
	if uerr == nil {
		t.Fatal("collision with an untouched row must fail")
	}
	if !strings.Contains(uerr.Error(), "unique") {
		t.Errorf("error should name the unique violation: %v", uerr)
	}
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("invariants after rollback: %v", err)
	}
	after, err := tab.SnapshotRows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, after) {
		t.Error("rollback did not restore the pre-statement rows")
	}
}

// CheckInvariants must actually detect divergence, or the fault tests
// above prove nothing.
func TestCheckInvariantsDetectsDivergence(t *testing.T) {
	tab, _ := atomFixture(t, 512, 10)
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("fresh table should be consistent: %v", err)
	}
	rid, row := rowWithAid(t, tab, 3)
	pk := tab.Index("pk")
	if err := pk.Tree.Delete(pk.KeyFor(row, rid)); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err == nil {
		t.Error("missing index entry should fail invariants")
	}
}

func rowWithAid(t *testing.T, tab *Table, aid int64) (storage.RID, []types.Value) {
	t.Helper()
	rids, rows := allRowsByAid(t, tab)
	for i, r := range rows {
		if r[0].Int == aid {
			return rids[i], r
		}
	}
	t.Fatalf("no row with Aid %d", aid)
	return storage.RID{}, nil
}

func allRowsByAid(t *testing.T, tab *Table) ([]storage.RID, [][]types.Value) {
	t.Helper()
	type pair struct {
		rid storage.RID
		row []types.Value
	}
	var ps []pair
	err := tab.Heap.Scan(func(rid storage.RID, rec []byte) (bool, error) {
		row, err := types.DecodeRow(rec)
		if err != nil {
			return false, err
		}
		for len(row) < len(tab.Columns) {
			row = append(row, types.Null())
		}
		ps = append(ps, pair{rid, row})
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].row[0].Int < ps[j].row[0].Int })
	rids := make([]storage.RID, len(ps))
	rows := make([][]types.Value, len(ps))
	for i, p := range ps {
		rids[i] = p.rid
		rows[i] = p.row
	}
	return rids, rows
}

func reverse[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
