package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/schemaver"
	"repro/internal/storage"
)

// This file is the catalog's durability boundary. The schema itself
// lives only in Go memory, so a checkpoint serializes it as a Snapshot
// (JSON inside the KCheckpoint record) and every DDL statement logs a
// DDLChange (JSON inside a KCatalog record). Recovery replays changes
// onto the snapshot to get a metadata model of the crashed system, then
// Restore turns the model back into live catalog structures.

// IndexSnap is the durable description of one index: definition plus
// the root page, which together with the pages reachable from it is all
// the state a B+tree needs.
type IndexSnap struct {
	Name   string         `json:"name"`
	Cols   []int          `json:"cols"`
	Unique bool           `json:"unique"`
	Root   storage.PageID `json:"root"`
}

// TableSnap is the durable description of one table: columns, the heap
// file's page list in file order, and its indexes.
type TableSnap struct {
	Name    string           `json:"name"`
	Cols    []Column         `json:"cols"`
	Pages   []storage.PageID `json:"pages,omitempty"`
	Indexes []IndexSnap      `json:"indexes,omitempty"`
}

// Snapshot is the whole catalog at a point in time.
type Snapshot struct {
	Tables  []TableSnap `json:"tables"`
	Version int64       `json:"version"`
}

// Snapshot captures the current catalog. Tables are sorted by name so
// the encoding is deterministic. The caller must ensure no DDL or DML
// is in flight (the engine holds its DDL lock exclusively).
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := &Snapshot{Version: c.version.Load()}
	for _, t := range c.tables {
		t.Mu.RLock()
		ts := TableSnap{
			Name:  t.Name,
			Cols:  append([]Column(nil), t.Columns...),
			Pages: t.Heap.Pages(),
		}
		for _, ix := range t.Indexes {
			ts.Indexes = append(ts.Indexes, IndexSnap{
				Name: ix.Name, Cols: append([]int(nil), ix.Cols...),
				Unique: ix.Unique, Root: ix.Tree.Root(),
			})
		}
		t.Mu.RUnlock()
		snap.Tables = append(snap.Tables, ts)
	}
	sort.Slice(snap.Tables, func(i, j int) bool { return snap.Tables[i].Name < snap.Tables[j].Name })
	return snap
}

// Encode serializes the snapshot for a checkpoint record.
func (s *Snapshot) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("catalog: snapshot encode: %v", err)) // no unmarshalable types
	}
	return b
}

// DecodeSnapshot parses a checkpoint record's catalog payload.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("catalog: snapshot decode: %w", err)
	}
	return s, nil
}

// DDL operation names carried in DDLChange.Op.
const (
	OpCreateTable = "create_table"
	OpDropTable   = "drop_table"
	OpCreateIndex = "create_index"
	OpDropIndex   = "drop_index"
	OpAddColumn   = "add_column"
	OpDropColumn  = "drop_column"
	OpWidenColumn = "widen_column"
)

// DDLChange is the durable form of one DDL statement (a KCatalog
// record). For create_index, Root is the tree's root as of the record's
// append — later splits that move the root log KBTreeRoot records.
type DDLChange struct {
	Op        string         `json:"op"`
	Table     string         `json:"table"`
	Cols      []Column       `json:"cols,omitempty"`
	Index     string         `json:"index,omitempty"`
	IndexCols []int          `json:"index_cols,omitempty"`
	Unique    bool           `json:"unique,omitempty"`
	Root      storage.PageID `json:"root,omitempty"`
}

// Encode serializes the change for a KCatalog record.
func (ch *DDLChange) Encode() []byte {
	b, err := json.Marshal(ch)
	if err != nil {
		panic(fmt.Sprintf("catalog: ddl change encode: %v", err))
	}
	return b
}

// DecodeDDLChange parses a KCatalog record payload.
func DecodeDDLChange(b []byte) (*DDLChange, error) {
	ch := &DDLChange{}
	if err := json.Unmarshal(b, ch); err != nil {
		return nil, fmt.Errorf("catalog: ddl change decode: %w", err)
	}
	return ch, nil
}

// table finds a table in the snapshot by name (case-insensitive).
func (s *Snapshot) table(name string) *TableSnap {
	for i := range s.Tables {
		if strings.EqualFold(s.Tables[i].Name, name) {
			return &s.Tables[i]
		}
	}
	return nil
}

// Apply replays one committed DDL change onto the metadata model.
func (s *Snapshot) Apply(ch *DDLChange) error {
	switch ch.Op {
	case OpCreateTable:
		if s.table(ch.Table) != nil {
			return fmt.Errorf("catalog: replay create of existing table %s", ch.Table)
		}
		s.Tables = append(s.Tables, TableSnap{Name: ch.Table, Cols: ch.Cols})
	case OpDropTable:
		for i := range s.Tables {
			if strings.EqualFold(s.Tables[i].Name, ch.Table) {
				s.Tables = append(s.Tables[:i], s.Tables[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("catalog: replay drop of missing table %s", ch.Table)
	case OpCreateIndex:
		t := s.table(ch.Table)
		if t == nil {
			return fmt.Errorf("catalog: replay create index on missing table %s", ch.Table)
		}
		t.Indexes = append(t.Indexes, IndexSnap{
			Name: ch.Index, Cols: ch.IndexCols, Unique: ch.Unique, Root: ch.Root,
		})
	case OpDropIndex:
		t := s.table(ch.Table)
		if t == nil {
			return fmt.Errorf("catalog: replay drop index on missing table %s", ch.Table)
		}
		for i := range t.Indexes {
			if strings.EqualFold(t.Indexes[i].Name, ch.Index) {
				t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("catalog: replay drop of missing index %s on %s", ch.Index, ch.Table)
	case OpAddColumn:
		t := s.table(ch.Table)
		if t == nil {
			return fmt.Errorf("catalog: replay add column on missing table %s", ch.Table)
		}
		t.Cols = append(t.Cols, ch.Cols...)
	case OpDropColumn:
		t := s.table(ch.Table)
		if t == nil {
			return fmt.Errorf("catalog: replay drop column on missing table %s", ch.Table)
		}
		name := ch.Cols[0].Name
		for i := range t.Cols {
			if !t.Cols[i].Dropped && strings.EqualFold(t.Cols[i].Name, name) {
				t.Cols[i].Dropped = true
				return nil
			}
		}
		return fmt.Errorf("catalog: replay drop of missing column %s.%s", ch.Table, name)
	case OpWidenColumn:
		t := s.table(ch.Table)
		if t == nil {
			return fmt.Errorf("catalog: replay widen column on missing table %s", ch.Table)
		}
		name := ch.Cols[0].Name
		for i := range t.Cols {
			if !t.Cols[i].Dropped && strings.EqualFold(t.Cols[i].Name, name) {
				t.Cols[i].Type = ch.Cols[0].Type
				return nil
			}
		}
		return fmt.Errorf("catalog: replay widen of missing column %s.%s", ch.Table, name)
	default:
		return fmt.Errorf("catalog: replay of unknown DDL op %q", ch.Op)
	}
	return nil
}

// AddHeapPage appends a page to a table's heap page list (replay of
// KHeapNewPage). Idempotent: a page already listed is left in place.
func (s *Snapshot) AddHeapPage(table string, page storage.PageID) error {
	t := s.table(table)
	if t == nil {
		return fmt.Errorf("catalog: replay heap growth on missing table %s", table)
	}
	for _, p := range t.Pages {
		if p == page {
			return nil
		}
	}
	t.Pages = append(t.Pages, page)
	return nil
}

// SetRoot repoints whichever index currently has root old to new
// (replay of KBTreeRoot). Reports whether an index matched; records
// from a statement that predates the index's KCatalog record match
// nothing, which is correct — the create's payload already carries the
// later root.
func (s *Snapshot) SetRoot(old, new storage.PageID) bool {
	for i := range s.Tables {
		for j := range s.Tables[i].Indexes {
			if s.Tables[i].Indexes[j].Root == old {
				s.Tables[i].Indexes[j].Root = new
				return true
			}
		}
	}
	return false
}

// Pages returns every page the snapshot's tables claim directly (heap
// pages and index roots; interior index pages are reachable from the
// roots on disk).
func (s *Snapshot) HeapPages() map[storage.PageID]string {
	out := make(map[storage.PageID]string)
	for i := range s.Tables {
		for _, p := range s.Tables[i].Pages {
			out[p] = s.Tables[i].Name
		}
	}
	return out
}

// Restore rebuilds a live catalog from a replayed metadata model. The
// caller (engine recovery) must afterwards call RecomputeAll to rebuild
// derived state — row counts, free-space caches, tree sizes — from the
// recovered pages.
func Restore(pool *storage.BufferPool, cfg Config, snap *Snapshot) *Catalog {
	if cfg.MetaBytesPerTable == 0 {
		cfg.MetaBytesPerTable = DefaultMetaBytesPerTable
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 64 << 20
	}
	c := &Catalog{tables: make(map[string]*Table), pool: pool, cfg: cfg}
	for _, ts := range snap.Tables {
		// The schema chain restarts at a single version: no snapshot
		// survives a crash, so the whole history collapses to the newest
		// columns (Dropped flags included — the slots themselves live on).
		t := &Table{
			Name:    ts.Name,
			Columns: append([]Column(nil), ts.Cols...),
			Heap:    storage.RestoreHeapFile(pool, cfg.InsertMode, ts.Pages),
			Schemas: schemaver.NewChain(ts.Cols),
		}
		for _, is := range ts.Indexes {
			t.Indexes = append(t.Indexes, &Index{
				Name: is.Name, Table: ts.Name, Cols: append([]int(nil), is.Cols...),
				Unique: is.Unique, Tree: btree.Restore(pool, is.Root),
			})
		}
		t.initVersions(cfg.Versions)
		c.tables[key(ts.Name)] = t
	}
	c.version.Store(snap.Version)
	c.rebudget()
	return c
}

// RecomputeAll rebuilds every table's derived state (heap row counts
// and free-space cache, index entry counts) by scanning the recovered
// pages.
func (c *Catalog) RecomputeAll() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		if err := t.Heap.RecomputeMeta(); err != nil {
			return err
		}
		for _, ix := range t.Indexes {
			if err := ix.Tree.RecountSize(); err != nil {
				return err
			}
		}
	}
	return nil
}
