package catalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/types"
)

func newCatalog(memBytes int64) (*Catalog, *storage.BufferPool) {
	disk := storage.NewDisk(0)
	pool := storage.NewBufferPool(disk, memBytes)
	return New(pool, Config{MemoryBytes: memBytes}), pool
}

func accountCols() []Column {
	return []Column{
		{Name: "Aid", Type: types.IntType, NotNull: true},
		{Name: "Name", Type: types.VarcharType(50)},
		{Name: "Hospital", Type: types.VarcharType(50)},
		{Name: "Beds", Type: types.IntType},
	}
}

func TestCreateDropTable(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, err := c.CreateTable("Account", accountCols())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ColIndex("beds") != 3 || tab.ColIndex("AID") != 0 {
		t.Error("ColIndex should be case-insensitive")
	}
	if tab.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if _, err := c.CreateTable("account", accountCols()); err == nil {
		t.Error("duplicate table (case-insensitive) should fail")
	}
	if !c.HasTable("ACCOUNT") {
		t.Error("HasTable case-insensitive lookup failed")
	}
	if err := c.DropTable("Account"); err != nil {
		t.Fatal(err)
	}
	if c.HasTable("Account") {
		t.Error("table survived drop")
	}
	if err := c.DropTable("Account"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	if _, err := c.CreateTable("empty", nil); err == nil {
		t.Error("empty column list should fail")
	}
	if _, err := c.CreateTable("dup", []Column{{Name: "a", Type: types.IntType}, {Name: "A", Type: types.IntType}}); err == nil {
		t.Error("duplicate columns should fail")
	}
}

func TestMetaBudgetShrinksPool(t *testing.T) {
	mem := int64(256 << 10) // 256 KB budget, 8 KB pages -> 32 frames
	c, pool := newCatalog(mem)
	before := pool.Capacity()
	for i := 0; i < 20; i++ {
		if _, err := c.CreateTable(fmt.Sprintf("t%02d", i), accountCols()); err != nil {
			t.Fatal(err)
		}
	}
	after := pool.Capacity()
	if after >= before {
		t.Errorf("pool capacity %d -> %d: creating tables must shrink the pool", before, after)
	}
	if got := c.MetaBytes(); got != 20*DefaultMetaBytesPerTable {
		t.Errorf("MetaBytes = %d", got)
	}
	for i := 0; i < 20; i++ {
		c.DropTable(fmt.Sprintf("t%02d", i))
	}
	if pool.Capacity() != before {
		t.Errorf("pool capacity should recover after drops: %d vs %d", pool.Capacity(), before)
	}
}

func TestInsertGetRow(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	row := []types.Value{types.NewInt(1), types.NewString("Acme"), types.NewString("St. Mary"), types.NewInt(135)}
	rid, err := tab.InsertRow(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.GetRow(rid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !types.Equal(got[i], row[i]) {
			t.Errorf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestInsertTypeChecking(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	// NULL in NOT NULL column.
	if _, err := tab.InsertRow([]types.Value{types.Null(), types.NewString("x"), types.Null(), types.Null()}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	// Too many values.
	if _, err := tab.InsertRow(make([]types.Value, 10)); err == nil {
		t.Error("arity overflow should fail")
	}
	// Short row pads with NULL.
	rid, err := tab.InsertRow([]types.Value{types.NewInt(2), types.NewString("Gump")})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tab.GetRow(rid)
	if !got[3].IsNull() {
		t.Error("short row should pad NULLs")
	}
	// String coerced into INT column.
	if _, err := tab.InsertRow([]types.Value{types.NewString("3"), types.Null(), types.Null(), types.Null()}); err != nil {
		t.Errorf("numeric string into INT column should coerce: %v", err)
	}
	if _, err := tab.InsertRow([]types.Value{types.NewString("abc"), types.Null(), types.Null(), types.Null()}); err == nil {
		t.Error("non-numeric string into INT column should fail")
	}
}

func TestUniqueIndexEnforced(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	if _, err := c.CreateIndex("Account", "pk_account", []string{"Aid"}, true); err != nil {
		t.Fatal(err)
	}
	mk := func(id int64) []types.Value {
		return []types.Value{types.NewInt(id), types.NewString("n"), types.Null(), types.Null()}
	}
	if _, err := tab.InsertRow(mk(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.InsertRow(mk(1)); err == nil {
		t.Error("duplicate PK should fail")
	}
	if _, err := tab.InsertRow(mk(2)); err != nil {
		t.Fatal(err)
	}
}

func TestIndexBackfillAndLookup(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	var rids []storage.RID
	for i := 0; i < 100; i++ {
		rid, err := tab.InsertRow([]types.Value{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("acct%d", i)),
			types.NewString("hosp"), types.NewInt(int64(i % 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	ix, err := c.CreateIndex("Account", "ix_beds", []string{"Beds"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 100 {
		t.Errorf("backfill: %d entries", ix.Tree.Len())
	}
	// Prefix scan on Beds = 3 should find 10 rows.
	it, err := ix.Tree.SeekPrefix(ix.PrefixFor([]types.Value{types.NewInt(3)}))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; it.Valid(); it.Next() {
		row, err := tab.GetRow(it.RID())
		if err != nil || row[3].Int != 3 {
			t.Errorf("index returned wrong row: %v %v", row, err)
		}
		n++
	}
	if n != 10 {
		t.Errorf("index scan found %d rows", n)
	}
	// Backfill with duplicates must fail for unique index.
	if _, err := c.CreateIndex("Account", "bad_unique", []string{"Beds"}, true); err == nil {
		t.Error("unique backfill over duplicates should fail")
	}
	if tab.Index("bad_unique") != nil {
		t.Error("failed index should not be registered")
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	c.CreateIndex("Account", "pk", []string{"Aid"}, true)
	row := []types.Value{types.NewInt(1), types.NewString("x"), types.Null(), types.Null()}
	rid, _ := tab.InsertRow(row)
	full, _ := tab.GetRow(rid)
	if err := tab.DeleteRow(rid, full); err != nil {
		t.Fatal(err)
	}
	if tab.Index("pk").Tree.Len() != 0 {
		t.Error("index entry survived delete")
	}
	// PK is reusable after delete.
	if _, err := tab.InsertRow(row); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	c.CreateIndex("Account", "pk", []string{"Aid"}, true)
	ix, _ := c.CreateIndex("Account", "ix_name", []string{"Name"}, false)
	rid, _ := tab.InsertRow([]types.Value{types.NewInt(1), types.NewString("old"), types.Null(), types.Null()})
	oldRow, _ := tab.GetRow(rid)
	newRow := append([]types.Value(nil), oldRow...)
	newRow[1] = types.NewString("new")
	newRID, err := tab.UpdateRow(rid, oldRow, newRow)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := ix.Tree.SeekPrefix(ix.PrefixFor([]types.Value{types.NewString("new")}))
	if !it.Valid() || it.RID() != newRID {
		t.Error("index not updated to new value")
	}
	it, _ = ix.Tree.SeekPrefix(ix.PrefixFor([]types.Value{types.NewString("old")}))
	if it.Valid() {
		t.Error("stale index entry for old value")
	}
}

func TestUpdateUniqueViolation(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("Account", accountCols())
	c.CreateIndex("Account", "pk", []string{"Aid"}, true)
	tab.InsertRow([]types.Value{types.NewInt(1), types.Null(), types.Null(), types.Null()})
	rid2, _ := tab.InsertRow([]types.Value{types.NewInt(2), types.Null(), types.Null(), types.Null()})
	oldRow, _ := tab.GetRow(rid2)
	newRow := append([]types.Value(nil), oldRow...)
	newRow[0] = types.NewInt(1)
	if _, err := tab.UpdateRow(rid2, oldRow, newRow); err == nil {
		t.Error("update into existing PK should fail")
	}
}

func TestAddColumn(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	tab, _ := c.CreateTable("T", []Column{{Name: "a", Type: types.IntType}})
	rid, _ := tab.InsertRow([]types.Value{types.NewInt(1)})
	if err := c.AddColumn("T", Column{Name: "b", Type: types.StringType}); err != nil {
		t.Fatal(err)
	}
	row, err := tab.GetRow(rid)
	if err != nil || len(row) != 2 || !row[1].IsNull() {
		t.Errorf("old row after ADD COLUMN: %v %v", row, err)
	}
	if err := c.AddColumn("T", Column{Name: "b", Type: types.IntType}); err == nil {
		t.Error("duplicate ADD COLUMN should fail")
	}
	if err := c.AddColumn("T", Column{Name: "c", Type: types.IntType, NotNull: true}); err == nil {
		t.Error("NOT NULL ADD COLUMN should fail")
	}
}

func TestDropIndex(t *testing.T) {
	c, _ := newCatalog(1 << 20)
	c.CreateTable("T", accountCols())
	c.CreateIndex("T", "ix", []string{"Aid"}, false)
	if err := c.DropIndex("T", "ix"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("T", "ix"); err == nil {
		t.Error("double drop index should fail")
	}
}

// TestRowOpsProperty randomly interleaves insert/update/delete against a
// model map and checks table + all index contents stay consistent.
func TestRowOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, _ := newCatalog(4 << 20)
		tab, _ := c.CreateTable("T", accountCols())
		c.CreateIndex("T", "pk", []string{"Aid"}, true)
		ix, _ := c.CreateIndex("T", "ix_beds", []string{"Beds"}, false)
		model := map[int64][]types.Value{} // Aid -> row
		ridOf := map[int64]storage.RID{}
		for op := 0; op < 300; op++ {
			id := int64(r.Intn(50))
			switch r.Intn(3) {
			case 0:
				row := []types.Value{
					types.NewInt(id),
					types.NewString(strings.Repeat("x", r.Intn(20))),
					types.NewString("h"),
					types.NewInt(int64(r.Intn(5))),
				}
				rid, err := tab.InsertRow(row)
				if _, exists := model[id]; exists {
					if err == nil {
						return false // unique violation missed
					}
				} else {
					if err != nil {
						return false
					}
					got, _ := tab.GetRow(rid)
					model[id] = got
					ridOf[id] = rid
				}
			case 1:
				if old, exists := model[id]; exists {
					if err := tab.DeleteRow(ridOf[id], old); err != nil {
						return false
					}
					delete(model, id)
					delete(ridOf, id)
				}
			case 2:
				if old, exists := model[id]; exists {
					nr := append([]types.Value(nil), old...)
					nr[3] = types.NewInt(int64(r.Intn(5)))
					newRID, err := tab.UpdateRow(ridOf[id], old, nr)
					if err != nil {
						return false
					}
					model[id] = nr
					ridOf[id] = newRID
				}
			}
		}
		// Verify every model row readable and the non-unique index complete.
		if ix.Tree.Len() != int64(len(model)) {
			return false
		}
		for id, want := range model {
			got, err := tab.GetRow(ridOf[id])
			if err != nil {
				return false
			}
			for i := range want {
				if !types.Equal(got[i], want[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
