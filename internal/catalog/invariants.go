package catalog

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/types"
)

// CheckInvariants verifies that the table's heap and every index
// describe the same set of rows:
//
//  1. every heap record decodes and is within the schema's arity;
//  2. every index entry's RID resolves to a live heap row whose key
//     bytes reproduce the entry's key exactly;
//  3. every heap row has exactly one entry in every index (checked by
//     entry count: heap rows = tree entries, with (2) pinning each
//     entry to a distinct live row).
//
// It returns nil when the table is consistent and a descriptive error
// for the first violation found. The caller must hold at least the
// table read lock. Fault-injection tests call this after every failed
// statement to prove rollback restored the pre-statement state.
func (t *Table) CheckInvariants() error {
	rows := make(map[storage.RID][]types.Value)
	err := t.Heap.Scan(func(rid storage.RID, rec []byte) (bool, error) {
		row, err := types.DecodeRow(rec)
		if err != nil {
			return false, fmt.Errorf("catalog: %s: row %v undecodable: %v", t.Name, rid, err)
		}
		if len(row) > len(t.Columns) {
			return false, fmt.Errorf("catalog: %s: row %v has %d values for %d columns", t.Name, rid, len(row), len(t.Columns))
		}
		for len(row) < len(t.Columns) {
			row = append(row, types.Null())
		}
		rows[rid] = row
		return true, nil
	})
	if err != nil {
		return err
	}
	if n := t.Heap.NumRows(); int64(len(rows)) != n {
		return fmt.Errorf("catalog: %s: heap row counter %d but %d live records", t.Name, n, len(rows))
	}
	for _, ix := range t.Indexes {
		if n := ix.Tree.Len(); n != int64(len(rows)) {
			return fmt.Errorf("catalog: %s: index %s has %d entries for %d heap rows", t.Name, ix.Name, n, len(rows))
		}
		it, err := ix.Tree.Scan()
		if err != nil {
			return err
		}
		for ; it.Valid(); it.Next() {
			rid := it.RID()
			row, ok := rows[rid]
			if !ok {
				return fmt.Errorf("catalog: %s: index %s entry %x points at dead row %v", t.Name, ix.Name, it.Key(), rid)
			}
			if want := ix.KeyFor(row, rid); string(want) != string(it.Key()) {
				return fmt.Errorf("catalog: %s: index %s entry %x for row %v should be %x", t.Name, ix.Name, it.Key(), rid, want)
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotRows returns every visible row of the table keyed by RID
// (fault-injection tests diff this against a pre-statement snapshot).
// The caller must hold at least the table read lock.
func (t *Table) SnapshotRows() (map[storage.RID][]types.Value, error) {
	rows := make(map[storage.RID][]types.Value)
	err := t.Heap.Scan(func(rid storage.RID, rec []byte) (bool, error) {
		row, err := types.DecodeRow(rec)
		if err != nil {
			return false, err
		}
		rows[rid] = row
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
