package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// This file is the log-shipping surface of the WAL: frame-aligned reads
// of the durable prefix for the primary-side shipper, a record cursor
// that tolerates a concurrent group-commit appender (replication's
// tail-read path), and the follower-side ingest that keeps a replica's
// log a byte-for-byte prefix mirror of the primary's stream.

// ErrTruncatedHistory is returned when a read position has been
// truncated away by a checkpoint: the reader must re-bootstrap from a
// snapshot instead of tailing the log.
var ErrTruncatedHistory = errors.New("wal: requested LSN truncated from log")

// ErrStreamGap is returned by IngestDurable when the offered bytes do
// not join the durable prefix: accepting them would tear the stream.
var ErrStreamGap = errors.New("wal: ingest would leave a gap in the stream")

// DurableBounds returns the retained durable byte range as LSNs:
// [base, end). base is the truncation point; end the durable horizon.
func (l *Log) DurableBounds() (base, end LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base, l.durableEndLocked()
}

// ReadDurable copies whole durable frames starting at the frame whose
// first byte sits at from, up to roughly maxBytes (always at least one
// frame when one is available). It returns the copied bytes and the LSN
// of the first byte past them — the next read position. from below the
// truncation point yields ErrTruncatedHistory (the caller needs a
// snapshot); from at the durable horizon yields an empty read.
//
// The durable prefix only ever grows at the end (truncation moves base,
// never rewrites retained bytes), so the copy is a consistent stream
// slice regardless of concurrent appends and syncs.
func (l *Log) ReadDurable(from LSN, maxBytes int) (buf []byte, next LSN, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, 0, fmt.Errorf("%w (want %d, base %d)", ErrTruncatedHistory, from, l.base)
	}
	end := l.durableEndLocked()
	if from > end {
		return nil, 0, fmt.Errorf("wal: read past durable horizon (want %d, end %d)", from, end)
	}
	off := int(from - l.base)
	n := 0
	for {
		if off+n+frameHeader > len(l.durable) {
			break
		}
		fl := int(binary.LittleEndian.Uint32(l.durable[off+n : off+n+4]))
		if off+n+frameHeader+fl > len(l.durable) {
			break
		}
		n += frameHeader + fl
		if n >= maxBytes {
			break
		}
	}
	if n == 0 {
		return nil, from, nil
	}
	return append([]byte(nil), l.durable[off:off+n]...), from + LSN(n), nil
}

// WaitDurable blocks until the durable horizon moves past after, a
// checkpoint truncates past it, or the log crashes. It returns the new
// horizon; a crash returns ErrCrashed. The group-commit sync path
// broadcasts on every completed sync, which is the wakeup.
func (l *Log) WaitDurable(after LSN) (LSN, error) {
	return l.WaitDurableCancel(after, nil)
}

// WaitDurableCancel is WaitDurable with a cancellation flag: a waiter
// parked here returns ErrCancelled once cancel is set AND someone calls
// Wake (or any sync broadcasts). The shipper's connection teardown uses
// it to unpark a subscriber stream blocked on an idle primary.
func (l *Log) WaitDurableCancel(after LSN, cancel *atomic.Bool) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if cancel != nil && cancel.Load() {
			return 0, ErrCancelled
		}
		if l.crashed {
			return 0, ErrCrashed
		}
		if end := l.durableEndLocked(); end > after {
			return end, nil
		}
		l.cond.Wait()
	}
}

// ErrCancelled reports that a WaitDurableCancel waiter was unparked by
// its cancellation flag rather than by new durable bytes.
var ErrCancelled = errors.New("wal: wait cancelled")

// Wake broadcasts to durability waiters without changing log state.
// Pair with the cancel flag of WaitDurableCancel.
func (l *Log) Wake() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Broadcast()
}

// RestoreLog builds a log whose durable prefix is a shipped byte range
// of a primary's stream — the follower bootstrap path. base is the
// stream offset of durable[0]; any torn suffix is trimmed. The
// active-transaction map is rebuilt from the records so the no-steal
// gate treats the primary's open transactions as live from the start.
func RestoreLog(cfg Config, base LSN, durable []byte) *Log {
	l := New(cfg)
	l.base = base
	l.durable = append([]byte(nil), durable...)
	recs, end := decodeFrames(l.durable, base)
	l.durable = l.durable[:end-base]
	for _, r := range recs {
		l.trackTxnLocked(r)
	}
	return l
}

// IngestDurable appends shipped stream bytes directly to the durable
// prefix — the follower-side mirror of the primary's ReadDurable. start
// is the stream offset of buf[0]. Overlap with bytes already held is
// deduplicated by offset (re-subscribing from an older position is
// idempotent: the held prefix is skipped, not re-applied), and bytes
// that would leave a gap are rejected. Only whole, checksummed frames
// are accepted; a torn suffix fails the ingest without admitting any of
// its bytes.
//
// Transaction bookkeeping (the active map driving the no-steal gate and
// checkpoint truncation) is maintained from the ingested records, so a
// follower's log behaves exactly like a primary's for the buffer pool
// and recovery — it just never appends records of its own.
func (l *Log) IngestDurable(start LSN, buf []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return 0, ErrCrashed
	}
	if len(l.tail) != 0 {
		return 0, errors.New("wal: ingest into a log with a volatile tail")
	}
	end := l.durableEndLocked()
	if start > end {
		return 0, fmt.Errorf("%w (stream at %d, offered %d)", ErrStreamGap, end, start)
	}
	if skip := int(end - start); skip > 0 {
		if skip >= len(buf) {
			return end, nil // entirely already held
		}
		buf = buf[skip:]
	}
	// Validate: whole frames only, checksums intact, records decodable.
	recs, parsedEnd := decodeFrames(buf, end)
	if parsedEnd != end+LSN(len(buf)) {
		return 0, fmt.Errorf("wal: ingest of torn or corrupt frames at %d", parsedEnd)
	}
	l.durable = append(l.durable, buf...)
	l.stats.BytesAppended += int64(len(buf))
	l.stats.Records += int64(len(recs))
	l.bytesSinceCkpt += int64(len(buf))
	for _, r := range recs {
		l.trackTxnLocked(r)
	}
	l.cond.Broadcast()
	return l.durableEndLocked(), nil
}

// trackTxnLocked maintains the active-transaction map (and the txn-id
// high-water mark) from a record that entered the log without going
// through Begin/endTxn — the ingest and recovery paths.
func (l *Log) trackTxnLocked(r *Record) {
	if r.Txn == 0 {
		return
	}
	if r.Txn > l.nextTxn {
		l.nextTxn = r.Txn
	}
	switch r.Kind {
	case KBegin:
		l.active[r.Txn] = r.LSN
	case KCommit, KAbort:
		delete(l.active, r.Txn)
	}
}

// RecoverActive rebuilds the active-transaction map from the retained
// durable records. A follower calls it after crash recovery: Reopen
// clears the map (on a primary the in-flight statements died with the
// crash), but a replica's open transactions are the PRIMARY's — their
// terminators arrive later over the stream, so the no-steal gate must
// keep treating them as live.
func (l *Log) RecoverActive() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.active = make(map[uint64]LSN)
	recs, _ := decodeFrames(l.durable, l.base)
	for _, r := range recs {
		l.trackTxnLocked(r)
	}
}

// Cursor iterates the durable records of a live log from a starting
// LSN. Unlike DurableRecords — which decodes a quiesced log once — a
// cursor re-reads under the log's lock on every step, so it tolerates a
// concurrent group-commit appender: records that become durable after
// the cursor was opened are simply returned by later Next calls.
type Cursor struct {
	l   *Log
	pos LSN // frame-start offset of the next record
}

// ReadFrom opens a cursor whose first Next returns the record whose
// frame starts at lsn. lsn must be a frame boundary (Base(), a frame
// start handed out by AppendCheckpoint, or a position a previous cursor
// reached); a position inside a frame fails checksum validation on the
// first Next.
func (l *Log) ReadFrom(lsn LSN) *Cursor { return &Cursor{l: l, pos: lsn} }

// Pos returns the stream offset of the next unread frame.
func (c *Cursor) Pos() LSN { return c.pos }

// Next returns the next durable record. ok=false with a nil error means
// the cursor has caught up with the durable horizon — more records may
// become durable later, and Next can simply be called again. A position
// truncated away returns ErrTruncatedHistory; a corrupt frame inside
// the durable prefix (which syncs only ever extend by whole frames)
// returns a decode error.
func (c *Cursor) Next() (r *Record, ok bool, err error) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.pos < l.base {
		return nil, false, fmt.Errorf("%w (cursor at %d, base %d)", ErrTruncatedHistory, c.pos, l.base)
	}
	off := int(c.pos - l.base)
	if len(l.durable)-off < frameHeader {
		return nil, false, nil
	}
	n := int(binary.LittleEndian.Uint32(l.durable[off : off+4]))
	sum := binary.LittleEndian.Uint32(l.durable[off+4 : off+8])
	if len(l.durable)-off-frameHeader < n {
		return nil, false, nil
	}
	payload := l.durable[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, false, fmt.Errorf("wal: corrupt frame at %d", c.pos)
	}
	rec, derr := decodeRecord(payload)
	if derr != nil {
		return nil, false, fmt.Errorf("wal: undecodable frame at %d: %w", c.pos, derr)
	}
	c.pos += LSN(frameHeader + n)
	rec.LSN = c.pos
	return rec, true, nil
}
