package wal_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
)

// The ALTER crash sweep: interleave online schema evolution (ADD/DROP/
// WIDEN column plus background backfill) with ordinary DML, then crash
// the workload once at every durability operation. After each crash,
// recovery must yield a database where (a) every acknowledged statement
// is fully visible and the pending one all-or-nothing, (b) every row is
// decodable under the recovered schema — no orphaned encodings from a
// half-done publish or a torn backfill batch — and (c) recovering a
// second time changes nothing.

// alterStep is one workload action: arbitrary exec plus its effect on
// the (id -> val) model. Columns added and dropped by the ALTERs are
// checked for decodability, not exact contents — id and val exist in
// every schema version and carry the atomicity check.
type alterStep struct {
	run func(db *engine.DB) error
	mut func(m map[int64]string)
}

func buildAlterWorkload() (steps []alterStep, modelAt []map[int64]string) {
	exec := func(q string, mut func(m map[int64]string)) {
		steps = append(steps, alterStep{
			run: func(db *engine.DB) error { _, err := db.Exec(q); return err },
			mut: mut,
		})
	}
	noop := func(map[int64]string) {}
	// waitBackfill pins the background migration to a deterministic
	// point in the op stream: the worker's WAL batches land while the
	// foreground is parked here, not interleaved with later statements.
	wait := func() {
		steps = append(steps, alterStep{
			run: func(db *engine.DB) error { return db.WaitBackfill(10 * time.Second) },
			mut: noop,
		})
	}
	exec("CREATE TABLE a (id INT NOT NULL, val TEXT)", noop)
	exec("CREATE UNIQUE INDEX a_pk ON a (id)", noop)
	for i := int64(0); i < 20; i++ {
		id, val := i, fmt.Sprintf("v%d", i)
		exec(fmt.Sprintf("INSERT INTO a (id, val) VALUES (%d, '%s')", id, val),
			func(m map[int64]string) { m[id] = val })
	}

	// ADD: old rows keep their short arity until backfill pads them.
	exec("ALTER TABLE a ADD COLUMN c1 INTEGER", noop)
	wait()
	for i := int64(20); i < 28; i++ {
		id, val := i, fmt.Sprintf("c%d", i)
		exec(fmt.Sprintf("INSERT INTO a (id, val, c1) VALUES (%d, '%s', %d)", id, val, id*7),
			func(m map[int64]string) { m[id] = val })
	}
	for i := int64(0); i < 6; i++ {
		id, val := i, fmt.Sprintf("u%d", i)
		exec(fmt.Sprintf("UPDATE a SET val = '%s' WHERE id = %d", val, id),
			func(m map[int64]string) { m[id] = val })
	}

	// WIDEN: stored INTs must re-read as FLOATs across the crash.
	exec("ALTER TABLE a ADD COLUMN amount INTEGER", noop)
	wait()
	for i := int64(28); i < 34; i++ {
		id, val := i, fmt.Sprintf("a%d", i)
		exec(fmt.Sprintf("INSERT INTO a (id, val, amount) VALUES (%d, '%s', %d)", id, val, id*100),
			func(m map[int64]string) { m[id] = val })
	}
	exec("ALTER TABLE a ALTER COLUMN amount TYPE FLOAT", noop)
	wait()

	// DROP: retained bytes must stay decodable, then scrub.
	exec("ALTER TABLE a DROP COLUMN c1", noop)
	wait()
	for i := int64(34); i < 40; i++ {
		id, val := i, fmt.Sprintf("d%d", i)
		exec(fmt.Sprintf("INSERT INTO a (id, val, amount) VALUES (%d, '%s', %d.5)", id, val, id),
			func(m map[int64]string) { m[id] = val })
	}
	exec("DELETE FROM a WHERE id = 3", func(m map[int64]string) { delete(m, 3) })
	wait()

	m := map[int64]string{}
	modelAt = make([]map[int64]string, len(steps)+1)
	clone := func() map[int64]string {
		c := make(map[int64]string, len(m))
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	modelAt[0] = clone()
	for k, s := range steps {
		s.mut(m)
		modelAt[k+1] = clone()
	}
	return steps, modelAt
}

// runAlterSteps executes steps until one fails, returning the index of
// the failed (pending) step, or len(steps).
func runAlterSteps(db *engine.DB, steps []alterStep) int {
	for k, s := range steps {
		if err := s.run(db); err != nil {
			return k
		}
	}
	return len(steps)
}

// snapshotAlterDB reads (id, val) — present in every schema version —
// and verifies full-row decodability via SELECT *.
func snapshotAlterDB(t *testing.T, db *engine.DB) map[int64]string {
	t.Helper()
	m := map[int64]string{}
	found := false
	for _, name := range db.Catalog().TableNames() {
		if name == "a" {
			found = true
		}
	}
	if !found {
		return m // crashed before the CREATE was durable
	}
	rows, err := db.Query("SELECT id, val FROM a")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, r := range rows.Data {
		m[r[0].Int] = r[1].Str
	}
	// Every surviving column of every row must decode: a star select
	// materializes all visible columns of all rows.
	all, err := db.Query("SELECT * FROM a")
	if err != nil {
		t.Fatalf("full-row decode after recovery: %v", err)
	}
	if len(all.Data) != len(rows.Data) {
		t.Fatalf("SELECT * saw %d rows, id/val saw %d", len(all.Data), len(rows.Data))
	}
	return m
}

func TestAlterCrashPointSweep(t *testing.T) {
	steps, modelAt := buildAlterWorkload()

	count := engine.Open(sweepConfig())
	probe := wal.InstallCrashPlan(wal.NeverCrash, count.Disk(), count.WAL())
	if k := runAlterSteps(count, steps); k != len(steps) {
		t.Fatalf("counting pass failed at step %d", k)
	}
	total := probe.Ops()
	if total < 200 {
		t.Fatalf("workload too small for the sweep: %d crash sites", total)
	}
	t.Logf("sweeping %d crash sites over %d steps", total, len(steps))

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	for site := int64(1); site <= total; site += stride {
		db := engine.Open(sweepConfig())
		plan := wal.InstallCrashPlan(site, db.Disk(), db.WAL())
		pending := runAlterSteps(db, steps)
		if !plan.Fired() {
			t.Fatalf("site %d: plan never fired (pending=%d)", site, pending)
		}
		db2, rep, err := engine.Recover(db.Crash())
		if err != nil {
			t.Fatalf("site %d: recover: %v (report %+v)", site, err, rep)
		}
		got := snapshotAlterDB(t, db2)
		// A backfill batch or post-commit checkpoint can absorb the crash
		// without failing any statement, so the recovered state may match
		// either boundary of the pending step.
		if !reflect.DeepEqual(got, modelAt[pending]) &&
			!reflect.DeepEqual(got, modelAt[min(pending+1, len(steps))]) {
			t.Fatalf("site %d: recovered state matches neither boundary of step %d:\n got   %v\nbefore %v\nafter  %v",
				site, pending, got, modelAt[pending], modelAt[min(pending+1, len(steps))])
		}
		// Recover-twice idempotence, at every site: ALTERs and backfill
		// batches replay onto the recovered image without changing it.
		db3, _, err := engine.Recover(db2.Crash())
		if err != nil {
			t.Fatalf("site %d: second recover: %v", site, err)
		}
		if again := snapshotAlterDB(t, db3); !reflect.DeepEqual(got, again) {
			t.Fatalf("site %d: recovery not idempotent:\nfirst  %v\nsecond %v", site, got, again)
		}
	}
}
