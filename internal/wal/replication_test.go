package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// TestCursorTailReadRace is the regression test for the tail-read
// cursor: a reader tailing the log with ReadFrom/Next while a pack of
// group-commit appenders race it. The cursor must return every record
// exactly once, in order, with correct payload decode — no torn frame,
// no skip, no duplicate — and must report caught-up (not error) at the
// moving durable horizon.
func TestCursorTailReadRace(t *testing.T) {
	const writers = 4
	const perWriter = 500
	l := New(Config{})

	var wrote atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sc, err := l.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := sc.HeapLogger("t").HeapInsert(storage.PageID(w+1), uint16(i), []byte("row")); err != nil {
					t.Error(err)
					return
				}
				if err := sc.Commit(); err != nil {
					t.Error(err)
					return
				}
				wrote.Add(1)
			}
		}(w)
	}

	// One transaction is Begin + HeapInsert + Commit = 3 records.
	const wantRecords = writers * perWriter * 3
	cur := l.ReadFrom(l.Base())
	var (
		got     int
		lastLSN LSN
		begins  int
		commits int
	)
	for got < wantRecords {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor error after %d records: %v", got, err)
		}
		if !ok {
			continue // caught up with the appenders; spin
		}
		if r.LSN <= lastLSN {
			t.Fatalf("cursor went backwards: %d after %d", r.LSN, lastLSN)
		}
		lastLSN = r.LSN
		switch r.Kind {
		case KBegin:
			begins++
		case KCommit:
			commits++
		case KHeapInsert:
			if string(r.Data) != "row" || r.Table != "t" {
				t.Fatalf("corrupt record decode at LSN %d: %+v", r.LSN, r)
			}
		default:
			t.Fatalf("unexpected record kind %v at LSN %d", r.Kind, r.LSN)
		}
		got++
	}
	wg.Wait()
	if begins != writers*perWriter || commits != writers*perWriter {
		t.Fatalf("saw %d begins / %d commits, want %d each", begins, commits, writers*perWriter)
	}
	// Horizon reached: one more Next is a clean caught-up, not an error.
	if r, ok, err := cur.Next(); err != nil || ok {
		t.Fatalf("post-stream Next = (%v, %v, %v), want caught-up", r, ok, err)
	}
	if cur.Pos() != l.DurableLSN() {
		t.Fatalf("cursor pos %d, durable horizon %d", cur.Pos(), l.DurableLSN())
	}
}

// TestCursorTruncatedHistory: a cursor parked below the truncation
// point must fail loudly, not decode garbage.
func TestCursorTruncatedHistory(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 10; i++ {
		sc, err := l.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.HeapLogger("t").HeapInsert(3, uint16(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := sc.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	old := l.Base()
	l.TruncateTo(l.DurableLSN())
	cur := l.ReadFrom(old)
	if _, _, err := cur.Next(); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("cursor below base: %v, want ErrTruncatedHistory", err)
	}
}

// TestReadDurableWholeFramesRace: ReadDurable must hand out only whole
// frames while appenders extend the log, and consecutive reads must
// tile the stream exactly (next read position = previous return).
func TestReadDurableWholeFramesRace(t *testing.T) {
	l := New(Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 800; i++ {
			sc, err := l.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if err := sc.HeapLogger("t").HeapInsert(1, uint16(i), []byte("abcdefgh")); err != nil {
				t.Error(err)
				return
			}
			if err := sc.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	pos := l.Base()
	var stream []byte
	for {
		buf, next, err := l.ReadDurable(pos, 64)
		if err != nil {
			t.Fatal(err)
		}
		if next == pos {
			select {
			case <-done:
				// Writer finished; drain whatever is left, then stop.
				if b2, n2, err := l.ReadDurable(pos, 1<<30); err != nil {
					t.Fatal(err)
				} else if n2 > pos {
					stream = append(stream, b2...)
					pos = n2
				}
				// Every shipped byte re-parses as whole frames.
				recs, end := decodeFrames(stream, l.Base())
				if end != pos {
					t.Fatalf("shipped stream re-parse stops at %d, shipped through %d", end, pos)
				}
				if len(recs) != 800*3 {
					t.Fatalf("shipped %d records, want %d", len(recs), 800*3)
				}
				return
			default:
				continue
			}
		}
		stream = append(stream, buf...)
		pos = next
	}
}

// TestIngestRoundTrip ships a log byte-for-byte into a fresh one and
// verifies the mirror is exact, including transaction bookkeeping.
func TestIngestRoundTrip(t *testing.T) {
	src := New(Config{})
	sc, err := src.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.HeapLogger("t").HeapInsert(1, 0, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := sc.Commit(); err != nil {
		t.Fatal(err)
	}
	open, err := src.Begin() // stays open: mirrors must track it as active
	if err != nil {
		t.Fatal(err)
	}
	if err := open.HeapLogger("t").HeapInsert(2, 0, []byte("open")); err != nil {
		t.Fatal(err)
	}
	if err := src.Sync(); err != nil {
		t.Fatal(err)
	}

	dst := New(Config{})
	base, end := src.DurableBounds()
	buf, next, err := src.ReadDurable(base, int(end-base))
	if err != nil {
		t.Fatal(err)
	}
	if next != end {
		t.Fatalf("short read: %d of %d", next, end)
	}
	if _, err := dst.IngestDurable(base, buf); err != nil {
		t.Fatal(err)
	}
	if dst.DurableLSN() != src.DurableLSN() {
		t.Fatalf("mirror horizon %d, source %d", dst.DurableLSN(), src.DurableLSN())
	}
	srcRecs, dstRecs := src.DurableRecords(), dst.DurableRecords()
	if len(srcRecs) != len(dstRecs) {
		t.Fatalf("mirror has %d records, source %d", len(dstRecs), len(srcRecs))
	}
	// The open transaction gates truncation on the mirror exactly as on
	// the source.
	if got, want := dst.OldestActiveLSN(), src.OldestActiveLSN(); got != want {
		t.Fatalf("mirror OldestActiveLSN %d, source %d", got, want)
	}
	// Overlap ingest is a no-op.
	if _, err := dst.IngestDurable(base, buf); err != nil {
		t.Fatal(err)
	}
	if got := len(dst.DurableRecords()); got != len(srcRecs) {
		t.Fatalf("overlap ingest duplicated records: %d, want %d", got, len(srcRecs))
	}
	// Gapped ingest is rejected.
	if _, err := dst.IngestDurable(end+512, buf); !errors.Is(err, ErrStreamGap) {
		t.Fatalf("gap ingest: %v, want ErrStreamGap", err)
	}
	// Torn bytes are rejected whole.
	if _, err := dst.IngestDurable(end, buf[:len(buf)-3]); err == nil {
		t.Fatal("torn ingest accepted")
	}
}
