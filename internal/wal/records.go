// Package wal implements the engine's durability subsystem: an
// append-only, LSN-addressed write-ahead log of physiological redo
// records, group-commit batching of sync calls, fuzzy checkpoints with
// log truncation, and the crash-point fault hooks the recovery test
// harness drives.
//
// The log models a real commit log the way storage.Disk models a real
// disk: appends land in a volatile tail, Sync moves the tail into the
// durable prefix, and a crash discards everything volatile. Recovery
// therefore sees exactly what a machine would find after power loss —
// the durable prefix, possibly ending in a torn record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
)

// LSN aliases storage.LSN: the byte offset just past a record's frame.
type LSN = storage.LSN

// Kind enumerates the redo record types.
type Kind uint8

const (
	// KBegin opens a statement scope.
	KBegin Kind = iota + 1
	// KCommit makes a statement's effects recoverable. A statement is
	// redone at recovery iff its commit record is in the durable log.
	KCommit
	// KAbort closes a rolled-back statement. Its records (including the
	// logged compensations) are skipped wholesale at recovery.
	KAbort
	// KCheckpoint carries a catalog snapshot plus the dirty-page table;
	// recovery starts its metadata model from the last one.
	KCheckpoint
	// KPageAlloc records a fresh page allocation (Cat tags it). Committed
	// allocs replay as no-ops (the disk survives); uncommitted ones are
	// freed by recovery's loser cleanup.
	KPageAlloc
	// KPageFree records a page release. Appended before the commit
	// record; the physical free runs only after the commit is durable.
	KPageFree
	// KHeapNewPage records heap-file growth; replay appends the page to
	// the table's page list and slotted-initializes it if it predates
	// the page's on-disk LSN.
	KHeapNewPage
	// KHeapInsert is a heap insert: Data landed in Slot on Page.
	KHeapInsert
	// KHeapInsertAt restores Data into tombstoned Slot on Page.
	KHeapInsertAt
	// KHeapDelete tombstones Slot on Page.
	KHeapDelete
	// KHeapUpdate rewrites Slot on Page with Data.
	KHeapUpdate
	// KBTreeInit formats Page as an empty leaf (a new tree's root).
	KBTreeInit
	// KBTreeInsert adds Key→RID to the leaf on Page.
	KBTreeInsert
	// KBTreeDelete removes Key from the leaf on Page.
	KBTreeDelete
	// KBTreeUpdate repoints Key to RID on Page.
	KBTreeUpdate
	// KBTreeImage replaces Page with the full node image in Data —
	// the structural record for splits, where per-key logging would
	// have to replay the split algorithm byte-for-byte.
	KBTreeImage
	// KBTreeRoot records a root change: Page is the old root, Page2 the
	// new one. Recovery matches trees by their current root.
	KBTreeRoot
	// KCatalog carries a JSON-encoded DDL change (create/drop table or
	// index, add column).
	KCatalog
	// KSavepoint marks a savepoint inside a transaction scope; Data is
	// the savepoint name. Purely informational for recovery: a partial
	// rollback appends logical compensations through the same loggers,
	// so redo needs no special handling.
	KSavepoint
)

var kindNames = map[Kind]string{
	KBegin: "begin", KCommit: "commit", KAbort: "abort",
	KCheckpoint: "checkpoint", KPageAlloc: "page-alloc", KPageFree: "page-free",
	KHeapNewPage: "heap-new-page", KHeapInsert: "heap-insert",
	KHeapInsertAt: "heap-insert-at", KHeapDelete: "heap-delete",
	KHeapUpdate: "heap-update", KBTreeInit: "btree-init",
	KBTreeInsert: "btree-insert", KBTreeDelete: "btree-delete",
	KBTreeUpdate: "btree-update", KBTreeImage: "btree-image",
	KBTreeRoot: "btree-root", KCatalog: "catalog", KSavepoint: "savepoint",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one log entry. A single struct covers every kind; unused
// fields encode as single zero bytes, which keeps the format uniform
// and the decoder total.
type Record struct {
	Kind  Kind
	Txn   uint64 // owning transaction (autocommit: statement), 0 for checkpoints
	Page  storage.PageID
	Page2 storage.PageID // KBTreeRoot: the new root
	Slot  uint16
	Cat   storage.Category
	RID   storage.RID // btree payload
	Table string      // heap records: owning table name
	Key   []byte      // btree key
	Data  []byte      // heap record bytes / node image / JSON payload

	// LSN is the offset just past this record's frame, filled in by
	// Append and by the recovery decoder. It is not part of the payload.
	LSN LSN
}

// Mutates reports whether the record addresses a page (and so
// participates in pageLSN-based redo skipping).
func (r *Record) Mutates() bool {
	switch r.Kind {
	case KHeapNewPage, KHeapInsert, KHeapInsertAt, KHeapDelete, KHeapUpdate,
		KBTreeInit, KBTreeInsert, KBTreeDelete, KBTreeUpdate, KBTreeImage:
		return true
	}
	return false
}

// encode serializes the record payload (everything but the frame).
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Kind), byte(r.Cat))
	dst = binary.AppendUvarint(dst, r.Txn)
	dst = binary.AppendUvarint(dst, uint64(r.Page))
	dst = binary.AppendUvarint(dst, uint64(r.Page2))
	dst = binary.AppendUvarint(dst, uint64(r.Slot))
	dst = binary.AppendUvarint(dst, uint64(r.RID.Page))
	dst = binary.AppendUvarint(dst, uint64(r.RID.Slot))
	dst = binary.AppendUvarint(dst, uint64(len(r.Table)))
	dst = append(dst, r.Table...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Data)))
	dst = append(dst, r.Data...)
	return dst
}

// decodeRecord parses one payload. It fails (rather than panics) on any
// truncation, so a torn frame that passed the CRC by luck still cannot
// crash recovery.
func decodeRecord(p []byte) (*Record, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("wal: record payload of %d bytes", len(p))
	}
	r := &Record{Kind: Kind(p[0]), Cat: storage.Category(p[1])}
	p = p[2:]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated varint in %s record", r.Kind)
		}
		p = p[n:]
		return v, nil
	}
	bs := func() ([]byte, error) {
		n, err := u()
		if err != nil {
			return nil, err
		}
		if uint64(len(p)) < n {
			return nil, fmt.Errorf("wal: truncated bytes in %s record", r.Kind)
		}
		out := p[:n:n]
		p = p[n:]
		return out, nil
	}
	var v uint64
	var err error
	if r.Txn, err = u(); err != nil {
		return nil, err
	}
	if v, err = u(); err != nil {
		return nil, err
	}
	r.Page = storage.PageID(v)
	if v, err = u(); err != nil {
		return nil, err
	}
	r.Page2 = storage.PageID(v)
	if v, err = u(); err != nil {
		return nil, err
	}
	r.Slot = uint16(v)
	if v, err = u(); err != nil {
		return nil, err
	}
	r.RID.Page = storage.PageID(v)
	if v, err = u(); err != nil {
		return nil, err
	}
	r.RID.Slot = uint16(v)
	tb, err := bs()
	if err != nil {
		return nil, err
	}
	r.Table = string(tb)
	if r.Key, err = bs(); err != nil {
		return nil, err
	}
	if r.Data, err = bs(); err != nil {
		return nil, err
	}
	return r, nil
}

// Frame layout: [len uint32][crc32c(payload) uint32][payload]. A
// record's LSN is the offset just past its frame.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendFrame(dst []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeFrames parses every complete, checksummed frame in buf, whose
// first byte sits at stream offset base. A short or corrupt frame ends
// the scan — that is the torn tail a crash mid-sync leaves behind — and
// the offset of the first byte past the last good frame is returned.
func decodeFrames(buf []byte, base LSN) (recs []*Record, end LSN) {
	off := 0
	for {
		if len(buf)-off < frameHeader {
			return recs, base + LSN(off)
		}
		n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if len(buf)-off-frameHeader < n {
			return recs, base + LSN(off)
		}
		payload := buf[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, base + LSN(off)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return recs, base + LSN(off)
		}
		off += frameHeader + n
		r.LSN = base + LSN(off)
		recs = append(recs, r)
	}
}
