package wal

import (
	"math"
	"sync/atomic"

	"repro/internal/storage"
)

// CrashPlan arms a deterministic crash at exactly one durability
// operation. One shared counter runs across the three operation kinds
// that make state durable or discard the chance to — physical page
// writes, WAL appends, and WAL syncs — so "site k" names the k-th such
// operation of a deterministic workload, whichever kind it happens to
// be. The sweep harness first runs the workload with an unreachable
// site to count the operations, then replays it once per site.
//
// When the site is a sync, the crash is torn: a site-derived number of
// tail bytes reach the durable prefix first, so the sweep also covers
// recovery from mid-frame garbage at the log's end.
type CrashPlan struct {
	site  int64
	seq   atomic.Int64
	fired atomic.Bool
	log   *Log
}

// NeverCrash is a site no run reaches; use it for the counting pass.
const NeverCrash int64 = math.MaxInt64

// InstallCrashPlan hooks a plan into the disk and the log. Site is
// 1-based; the plan stays installed until the next SetFault on either.
func InstallCrashPlan(site int64, disk *storage.Disk, log *Log) *CrashPlan {
	p := &CrashPlan{site: site, log: log}
	disk.SetFault(p.diskFault)
	log.SetFault(p.logFault)
	return p
}

// Fired reports whether the crash site was reached.
func (p *CrashPlan) Fired() bool { return p.fired.Load() }

// Ops returns how many countable operations the plan has observed; a
// counting pass reads this to learn the sweep's upper bound.
func (p *CrashPlan) Ops() int64 { return p.seq.Load() }

func (p *CrashPlan) diskFault(fi storage.FaultInfo) error {
	if p.fired.Load() {
		return ErrCrashed
	}
	if fi.Op != storage.FaultWrite {
		return nil
	}
	if p.seq.Add(1) == p.site {
		p.fired.Store(true)
		// The page write is refused and the machine is down: the log's
		// volatile tail dies with it. Safe to lock the log here — the
		// WAL-before-data sync completed before this write began.
		p.log.Crash()
		return ErrCrashed
	}
	return nil
}

func (p *CrashPlan) logFault(op FaultOp, _ int64) error {
	if p.fired.Load() {
		return ErrCrashed
	}
	if p.seq.Add(1) != p.site {
		return nil
	}
	p.fired.Store(true)
	if op == OpSync {
		// Torn sync: a deterministic, site-varying prefix of the tail
		// lands durable — sometimes nothing, sometimes a partial frame.
		return &PartialSyncError{Bytes: int(p.site % 97)}
	}
	return ErrCrashed
}
