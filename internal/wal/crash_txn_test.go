package wal_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wal"
)

// The transaction crash-point sweep (PR 5): the unit of atomicity is
// no longer the statement but the interactive transaction. One
// deterministic workload of multi-statement transactions — spanning
// tables, using savepoints and partial rollbacks, some explicitly
// rolled back, interleaved with autocommit statements — runs once to
// count every durability operation, then once per operation with a
// crash planted there. After recovery, every COMMIT-acknowledged
// transaction must be fully visible and every loser (open at the
// crash, even with its COMMIT in flight but not durable) must have
// left no trace at all.

// sstep is one statement of a transactional workload script.
type sstep struct {
	q      string
	params []types.Value
}

// txnScript is one atomic unit: either a BEGIN...COMMIT/ROLLBACK
// group or a single autocommit statement.
type txnScript struct {
	stmts []sstep
}

// sortedIDs returns a table's ids in deterministic order.
func sortedIDs(rows map[int64]string) []int64 {
	ids := make([]int64, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// buildTxnWorkload generates the scripts and the committed state after
// each: modelAt[k] is the state once the first k scripts are
// acknowledged. Transaction effects are simulated during generation
// (including savepoint rollbacks), so each script's net effect is
// exact by construction.
func buildTxnWorkload() (scripts []txnScript, modelAt []model) {
	rng := rand.New(rand.NewSource(7))
	cur := model{}
	push := func(sc txnScript) {
		scripts = append(scripts, sc)
		modelAt = append(modelAt, cur.clone())
	}

	// Schema setup: three tenant tables, one with a unique index. Each
	// DDL statement is its own autocommit unit.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		sc := txnScript{stmts: []sstep{{q: fmt.Sprintf("CREATE TABLE %s (id INT NOT NULL, val TEXT)", name)}}}
		cur[name] = map[int64]string{}
		push(sc)
	}
	push(txnScript{stmts: []sstep{{q: "CREATE UNIQUE INDEX t0_pk ON t0 (id)"}}})

	nextID := map[string]int64{}
	tbl := func() string { return fmt.Sprintf("t%d", rng.Intn(3)) }

	// genDML emits one DML statement applied to work, or ok=false if
	// nothing sensible exists (empty table for update/delete).
	genDML := func(work model, i int) (sstep, bool) {
		name := tbl()
		switch r := rng.Intn(10); {
		case r < 5:
			id := nextID[name]
			nextID[name]++
			val := fmt.Sprintf("v%d-%d", i, rng.Intn(1000))
			work[name][id] = val
			return sstep{q: "INSERT INTO " + name + " VALUES (?, ?)",
				params: []types.Value{types.NewInt(id), types.NewString(val)}}, true
		case r < 8:
			ids := sortedIDs(work[name])
			if len(ids) == 0 {
				return sstep{}, false
			}
			id := ids[rng.Intn(len(ids))]
			val := fmt.Sprintf("u%d", i)
			work[name][id] = val
			return sstep{q: "UPDATE " + name + " SET val = ? WHERE id = ?",
				params: []types.Value{types.NewString(val), types.NewInt(id)}}, true
		default:
			ids := sortedIDs(work[name])
			if len(ids) == 0 {
				return sstep{}, false
			}
			id := ids[rng.Intn(len(ids))]
			delete(work[name], id)
			return sstep{q: "DELETE FROM " + name + " WHERE id = ?",
				params: []types.Value{types.NewInt(id)}}, true
		}
	}

	const txns = 100
	for i := 0; i < txns; i++ {
		if rng.Intn(5) == 0 {
			// Autocommit interlude: a single statement is its own unit.
			work := cur.clone()
			if st, ok := genDML(work, i); ok {
				cur = work
				push(txnScript{stmts: []sstep{st}})
			}
			continue
		}
		work := cur.clone()
		var saves []model
		sc := txnScript{stmts: []sstep{{q: "BEGIN"}}}
		nstmt := 2 + rng.Intn(4)
		for j := 0; j < nstmt; j++ {
			switch r := rng.Intn(10); {
			case r == 8 && len(saves) < 2:
				saves = append(saves, work.clone())
				sc.stmts = append(sc.stmts, sstep{q: fmt.Sprintf("SAVEPOINT sp%d", len(saves)-1)})
			case r == 9 && len(saves) > 0:
				// Partial rollback to a random live savepoint; later
				// savepoints are destroyed, the named one survives.
				n := rng.Intn(len(saves))
				work = saves[n].clone()
				saves = saves[:n+1]
				sc.stmts = append(sc.stmts, sstep{q: fmt.Sprintf("ROLLBACK TO sp%d", n)})
			default:
				if st, ok := genDML(work, i); ok {
					sc.stmts = append(sc.stmts, st)
				}
			}
		}
		if rng.Intn(100) < 80 {
			sc.stmts = append(sc.stmts, sstep{q: "COMMIT"})
			cur = work // the transaction's net effect becomes durable
		} else {
			sc.stmts = append(sc.stmts, sstep{q: "ROLLBACK"})
		}
		push(sc)
	}
	// modelAt[k] currently holds the state after k+1 scripts; prepend
	// the empty state so modelAt[k] = state after first k scripts.
	modelAt = append([]model{{}}, modelAt...)
	return scripts, modelAt
}

// runTxnScripts executes scripts through one session until a statement
// fails. Returns the failing script index (len(scripts) if none) and
// whether the failing statement was the script's final one (its
// COMMIT/ROLLBACK — or the sole statement of an autocommit unit).
func runTxnScripts(db *engine.DB, scripts []txnScript) (pending int, lastStmt bool) {
	s := db.Session()
	for k, sc := range scripts {
		for j, st := range sc.stmts {
			if _, err := s.Exec(st.q, st.params...); err != nil {
				return k, j == len(sc.stmts)-1
			}
		}
	}
	return len(scripts), false
}

func TestTxnCrashPointSweep(t *testing.T) {
	scripts, modelAt := buildTxnWorkload()

	count := engine.Open(sweepConfig())
	probe := wal.InstallCrashPlan(wal.NeverCrash, count.Disk(), count.WAL())
	if k, _ := runTxnScripts(count, scripts); k != len(scripts) {
		t.Fatalf("counting pass failed at script %d", k)
	}
	total := probe.Ops()
	if total < 500 {
		t.Fatalf("workload too small for the sweep: %d crash sites", total)
	}
	t.Logf("sweeping %d crash sites over %d transaction scripts", total, len(scripts))

	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for site := int64(1); site <= total; site += stride {
		db := engine.Open(sweepConfig())
		plan := wal.InstallCrashPlan(site, db.Disk(), db.WAL())
		pending, lastStmt := runTxnScripts(db, scripts)
		if !plan.Fired() {
			t.Fatalf("site %d: plan never fired (pending=%d)", site, pending)
		}
		db2, rep, err := engine.Recover(db.Crash())
		if err != nil {
			t.Fatalf("site %d: recover: %v (report %+v)", site, err, rep)
		}
		got := snapshotDB(t, db2)
		before := modelAt[pending]
		after := modelAt[min(pending+1, len(scripts))]
		if lastStmt {
			// The crash was observed at the script's terminator (or by a
			// post-commit checkpoint's successor): the transaction's
			// COMMIT may or may not have reached the log — either
			// boundary, but nothing in between.
			if !reflect.DeepEqual(got, before) && !reflect.DeepEqual(got, after) {
				t.Fatalf("site %d: state matches neither boundary of script %d:\n got    %v\nbefore %v\nafter  %v",
					site, pending, got, before, after)
			}
		} else {
			// The crash hit before the COMMIT was even issued: the open
			// transaction is a loser and must have left no trace — not a
			// row, not a savepoint's worth of partial effect.
			if !reflect.DeepEqual(got, before) {
				t.Fatalf("site %d: loser transaction %d left a trace:\n got    %v\nwant   %v",
					site, pending, got, before)
			}
		}
		// Recovery must be idempotent: crash the recovered database
		// untouched and recover again, byte-for-byte the same state.
		if site%97 == 0 {
			db3, rep2, err := engine.Recover(db2.Crash())
			if err != nil {
				t.Fatalf("site %d: second recover: %v", site, err)
			}
			if again := snapshotDB(t, db3); !reflect.DeepEqual(got, again) {
				t.Fatalf("site %d: recovery not idempotent", site)
			}
			if rep2.Replayed != 0 && rep2.Replayed != rep.Replayed {
				t.Fatalf("site %d: second recovery replayed %d, first %d",
					site, rep2.Replayed, rep.Replayed)
			}
		}
	}
}
