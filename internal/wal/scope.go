package wal

import (
	"repro/internal/storage"
)

// Scope is one transaction's window onto the log. The engine opens a
// scope per autocommit DML/DDL statement or per interactive
// transaction (at its first write), installs its loggers on the tables
// being written, and closes it with Commit (append the commit record,
// group-commit sync, run deferred frees) or Abort. A scope may span
// many statements; Savepoint drops a named marker between them.
//
// The logger adapters append a redo record per page mutation and stamp
// the page's in-memory pageLSN, which is what ties the buffer pool's
// WAL-before-data gate to the log.
type Scope struct {
	l  *Log
	id uint64

	// deferredFree collects pages a DROP releases. Their free records
	// are appended before the commit record (one sync covers both), but
	// the destructive disk frees run only after the commit is durable —
	// an uncommitted drop must leave every page intact.
	deferredFree []storage.PageID
	deferredCat  []storage.Category
}

// ID returns the transaction's log-assigned ID.
func (s *Scope) ID() uint64 { return s.id }

// Savepoint appends a named savepoint marker. Recovery skips it — the
// compensations of a partial rollback are logged like any other
// mutation — but the marker keeps the durable history auditable.
func (s *Scope) Savepoint(name string) error {
	return s.append(&Record{Kind: KSavepoint, Data: []byte(name)})
}

// append logs a record under this statement and stamps the mutated
// page, if any.
func (s *Scope) append(r *Record) error {
	r.Txn = s.id
	start, lsn, err := s.l.append(r)
	if err != nil {
		return err
	}
	if r.Mutates() && s.l.pool != nil {
		s.l.pool.StampLSN(r.Page, lsn, start)
	}
	return nil
}

// Commit appends the deferred free records and the commit record, waits
// for the group-commit sync to make them durable, and then performs the
// physical frees. Statement effects are recoverable iff Commit returns
// nil.
func (s *Scope) Commit() error {
	for i, id := range s.deferredFree {
		if err := s.append(&Record{Kind: KPageFree, Page: id, Cat: s.deferredCat[i]}); err != nil {
			s.l.endTxn(s.id)
			return err
		}
	}
	_, lsn, err := s.l.append(&Record{Kind: KCommit, Txn: s.id})
	if err != nil {
		s.l.endTxn(s.id)
		return err
	}
	err = s.l.Commit(lsn)
	s.l.endTxn(s.id)
	if err != nil {
		return err
	}
	for _, id := range s.deferredFree {
		// Best effort: a page already gone (crash between free and a
		// retry) is not an error, and recovery replays the free records.
		_ = s.l.pool.FreePage(id)
	}
	return nil
}

// Abort appends the abort record (best effort — the log may already be
// crashed) and closes the scope. Deferred frees are dropped: the pages
// stay live, exactly as recovery would leave them.
func (s *Scope) Abort() {
	_, _, _ = s.l.append(&Record{Kind: KAbort, Txn: s.id})
	s.l.endTxn(s.id)
}

// DeferFree schedules pages for release at commit.
func (s *Scope) DeferFree(cat storage.Category, pages ...storage.PageID) {
	for _, id := range pages {
		s.deferredFree = append(s.deferredFree, id)
		s.deferredCat = append(s.deferredCat, cat)
	}
}

// CatalogChange appends a DDL change record (JSON payload).
func (s *Scope) CatalogChange(payload []byte) error {
	return s.append(&Record{Kind: KCatalog, Data: payload})
}

// HeapLogger returns the storage.HeapLogger that tags records with the
// owning table's name.
func (s *Scope) HeapLogger(table string) storage.HeapLogger {
	return &heapLogger{s: s, table: table}
}

type heapLogger struct {
	s     *Scope
	table string
}

func (h *heapLogger) HeapNewPage(page storage.PageID) error {
	if err := h.s.append(&Record{Kind: KPageAlloc, Page: page, Cat: storage.CatData}); err != nil {
		return err
	}
	return h.s.append(&Record{Kind: KHeapNewPage, Page: page, Table: h.table})
}

func (h *heapLogger) HeapInsert(page storage.PageID, slot uint16, rec []byte) error {
	return h.s.append(&Record{Kind: KHeapInsert, Page: page, Slot: slot, Table: h.table,
		Data: append([]byte(nil), rec...)})
}

func (h *heapLogger) HeapInsertAt(page storage.PageID, slot uint16, rec []byte) error {
	return h.s.append(&Record{Kind: KHeapInsertAt, Page: page, Slot: slot, Table: h.table,
		Data: append([]byte(nil), rec...)})
}

func (h *heapLogger) HeapDelete(page storage.PageID, slot uint16) error {
	return h.s.append(&Record{Kind: KHeapDelete, Page: page, Slot: slot, Table: h.table})
}

func (h *heapLogger) HeapUpdate(page storage.PageID, slot uint16, rec []byte) error {
	return h.s.append(&Record{Kind: KHeapUpdate, Page: page, Slot: slot, Table: h.table,
		Data: append([]byte(nil), rec...)})
}

// TreeLogger returns the B+tree mutation logger. The returned value
// implements btree.Logger structurally; wal does not import btree.
func (s *Scope) TreeLogger() *TreeLogger { return &TreeLogger{s: s} }

// TreeLogger logs B+tree page mutations under one statement scope.
type TreeLogger struct{ s *Scope }

// BTreePageAlloc records a fresh index-page allocation (split or new
// root).
func (t *TreeLogger) BTreePageAlloc(page storage.PageID) error {
	return t.s.append(&Record{Kind: KPageAlloc, Page: page, Cat: storage.CatIndex})
}

// BTreeInit records the formatting of page as an empty leaf.
func (t *TreeLogger) BTreeInit(page storage.PageID) error {
	return t.s.append(&Record{Kind: KBTreeInit, Page: page})
}

// BTreeInsert records a leaf-level insert of key→rid on page.
func (t *TreeLogger) BTreeInsert(page storage.PageID, key []byte, rid storage.RID) error {
	return t.s.append(&Record{Kind: KBTreeInsert, Page: page, RID: rid,
		Key: append([]byte(nil), key...)})
}

// BTreeDelete records a leaf-level delete of key on page.
func (t *TreeLogger) BTreeDelete(page storage.PageID, key []byte) error {
	return t.s.append(&Record{Kind: KBTreeDelete, Page: page,
		Key: append([]byte(nil), key...)})
}

// BTreeUpdate records a leaf-level RID repoint of key on page.
func (t *TreeLogger) BTreeUpdate(page storage.PageID, key []byte, rid storage.RID) error {
	return t.s.append(&Record{Kind: KBTreeUpdate, Page: page, RID: rid,
		Key: append([]byte(nil), key...)})
}

// BTreePageImage records the full post-image of a page a split
// restructured.
func (t *TreeLogger) BTreePageImage(page storage.PageID, img []byte) error {
	return t.s.append(&Record{Kind: KBTreeImage, Page: page,
		Data: append([]byte(nil), img...)})
}

// BTreeRoot records a root change from old to new.
func (t *TreeLogger) BTreeRoot(old, new storage.PageID) error {
	return t.s.append(&Record{Kind: KBTreeRoot, Page: old, Page2: new})
}
