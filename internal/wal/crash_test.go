package wal_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wal"
)

// The crash-point sweep: run one deterministic multi-tenant workload,
// count every durability operation (WAL append, WAL sync, physical page
// write), then re-run it once per operation with a crash planted at
// exactly that point. After every crash, recovery must produce a state
// where each acknowledged statement is fully visible, the one pending
// statement is all-or-nothing, and every structural invariant holds.

// model is table -> id -> val; a table's presence in the map is its
// existence in the schema.
type model map[string]map[int64]string

func (m model) clone() model {
	c := make(model, len(m))
	for t, rows := range m {
		cr := make(map[int64]string, len(rows))
		for k, v := range rows {
			cr[k] = v
		}
		c[t] = cr
	}
	return c
}

// step is one workload statement plus its effect on the model.
type step struct {
	q      string
	params []types.Value
	mut    func(m model)
}

// buildWorkload returns a deterministic statement sequence over three
// tenant tables (one indexed), including index build/drop and a
// temporary table's full lifecycle, plus model snapshots: modelAt[k] is
// the state after the first k steps.
func buildWorkload() (steps []step, modelAt []model) {
	rng := rand.New(rand.NewSource(42))
	add := func(q string, mut func(m model), params ...types.Value) {
		steps = append(steps, step{q: q, params: params, mut: mut})
	}
	tbl := func(i int) string { return fmt.Sprintf("t%d", i%3) }

	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		add("CREATE TABLE "+name+" (id INT NOT NULL, val TEXT)",
			func(m model) { m[name] = map[int64]string{} })
	}
	add("CREATE UNIQUE INDEX t0_pk ON t0 (id)", func(m model) {})

	nextID := map[string]int64{}
	for i := 0; i < 280; i++ {
		name := tbl(i)
		switch {
		case i == 40:
			add("CREATE INDEX t1_id ON t1 (id)", func(m model) {})
		case i == 90:
			add("DROP INDEX t1_id ON t1", func(m model) {})
		case i == 60:
			add("CREATE TABLE scratch (id INT NOT NULL, val TEXT)",
				func(m model) { m["scratch"] = map[int64]string{} })
		case i > 60 && i < 110 && i%7 == 0:
			id := nextID["scratch"]
			nextID["scratch"]++
			add("INSERT INTO scratch VALUES (?, ?)",
				func(m model) { m["scratch"][id] = "s" },
				types.NewInt(id), types.NewString("s"))
		case i == 110:
			add("DROP TABLE scratch", func(m model) { delete(m, "scratch") })
		default:
			switch r := rng.Intn(10); {
			case r < 6: // insert
				id := nextID[name]
				nextID[name]++
				val := fmt.Sprintf("v%d-%d", i, rng.Intn(1000))
				add("INSERT INTO "+name+" VALUES (?, ?)",
					func(m model) { m[name][id] = val },
					types.NewInt(id), types.NewString(val))
			case r < 8: // update one existing id (or a miss)
				id := int64(rng.Intn(int(nextID[name]) + 1))
				val := fmt.Sprintf("u%d", i)
				add("UPDATE "+name+" SET val = ? WHERE id = ?",
					func(m model) {
						if _, ok := m[name][id]; ok {
							m[name][id] = val
						}
					},
					types.NewString(val), types.NewInt(id))
			default: // delete
				id := int64(rng.Intn(int(nextID[name]) + 1))
				add("DELETE FROM "+name+" WHERE id = ?",
					func(m model) { delete(m[name], id) },
					types.NewInt(id))
			}
		}
	}

	m := model{}
	modelAt = make([]model, len(steps)+1)
	modelAt[0] = m.clone()
	for k, s := range steps {
		s.mut(m)
		modelAt[k+1] = m.clone()
	}
	return steps, modelAt
}

func sweepConfig() engine.Config {
	return engine.Config{
		MemoryBytes:     64 << 10,
		PageSize:        1024,
		CheckpointBytes: 4 << 10,
	}
}

// runUntilError executes steps until one fails, returning the index of
// the failed (pending) step, or len(steps) if all succeeded.
func runUntilError(db *engine.DB, steps []step) int {
	for k, s := range steps {
		if _, err := db.Exec(s.q, s.params...); err != nil {
			return k
		}
	}
	return len(steps)
}

// snapshotDB reads every table into model form.
func snapshotDB(t *testing.T, db *engine.DB) model {
	t.Helper()
	m := model{}
	for _, name := range db.Catalog().TableNames() {
		rows, err := db.Query("SELECT id, val FROM " + name)
		if err != nil {
			t.Fatalf("snapshot %s: %v", name, err)
		}
		rm := map[int64]string{}
		for _, r := range rows.Data {
			rm[r[0].Int] = r[1].Str
		}
		m[name] = rm
	}
	return m
}

func TestCrashPointSweep(t *testing.T) {
	steps, modelAt := buildWorkload()

	// Counting pass: how many durability operations does the workload
	// perform end to end?
	count := engine.Open(sweepConfig())
	probe := wal.InstallCrashPlan(wal.NeverCrash, count.Disk(), count.WAL())
	if k := runUntilError(count, steps); k != len(steps) {
		t.Fatalf("counting pass failed at step %d", k)
	}
	total := probe.Ops()
	if total < 1000 {
		t.Fatalf("workload too small for the sweep: %d crash sites, want >= 1000", total)
	}
	t.Logf("sweeping %d crash sites over %d statements", total, len(steps))

	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for site := int64(1); site <= total; site += stride {
		db := engine.Open(sweepConfig())
		plan := wal.InstallCrashPlan(site, db.Disk(), db.WAL())
		pending := runUntilError(db, steps)
		if !plan.Fired() {
			t.Fatalf("site %d: plan never fired (pending=%d)", site, pending)
		}
		db2, rep, err := engine.Recover(db.Crash())
		if err != nil {
			t.Fatalf("site %d: recover: %v (report %+v)", site, err, rep)
		}
		got := snapshotDB(t, db2)
		// A crash can land after a statement committed but inside the
		// post-commit checkpoint, in which case the next statement is the
		// one that observes the crash; both it and the statement that
		// failed are legal "pending" boundaries. Everything acknowledged
		// must be present; the pending statement is all-or-nothing.
		if !reflect.DeepEqual(got, modelAt[pending]) &&
			!reflect.DeepEqual(got, modelAt[min(pending+1, len(steps))]) {
			t.Fatalf("site %d: recovered state matches neither boundary of step %d:\n got   %v\nbefore %v\nafter  %v",
				site, pending, got, modelAt[pending], modelAt[min(pending+1, len(steps))])
		}
		// Periodically prove recovery is idempotent: crash the recovered
		// database untouched and recover again.
		if site%97 == 0 {
			db3, rep2, err := engine.Recover(db2.Crash())
			if err != nil {
				t.Fatalf("site %d: second recover: %v", site, err)
			}
			if again := snapshotDB(t, db3); !reflect.DeepEqual(got, again) {
				t.Fatalf("site %d: recovery not idempotent", site)
			}
			if rep2.Replayed != 0 && rep2.Replayed != rep.Replayed {
				// Second recovery replays the same durable history onto the
				// same durable pages; pageLSN skips make most of it a no-op
				// but the counts must at least be stable.
				t.Fatalf("site %d: second recovery replayed %d, first %d",
					site, rep2.Replayed, rep.Replayed)
			}
		}
	}
}

// TestCrashSoakRandomized crashes a concurrent multi-tenant workload at
// random sites. Each tenant runs on its own table, so after recovery
// each tenant's rows must equal its acknowledged writes, give or take
// the single statement that was in flight.
func TestCrashSoakRandomized(t *testing.T) {
	const tenants = 4
	const stmtsPerTenant = 30
	seeds := 18
	if testing.Short() {
		seeds = 4
	}

	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		db := engine.Open(sweepConfig())
		for w := 0; w < tenants; w++ {
			if _, err := db.Exec(fmt.Sprintf("CREATE TABLE tenant%d (id INT NOT NULL, val TEXT)", w)); err != nil {
				t.Fatal(err)
			}
		}
		// Rough site budget: a prior counting run isn't deterministic under
		// concurrency, so draw from a range the workload plausibly covers;
		// late (never-fired) sites degrade into the clean-crash case.
		site := 1 + rng.Int63n(int64(tenants*stmtsPerTenant*5))
		wal.InstallCrashPlan(site, db.Disk(), db.WAL())

		acked := make([]map[int64]string, tenants)
		pendings := make([]func(map[int64]string), tenants)
		var wg sync.WaitGroup
		for w := 0; w < tenants; w++ {
			acked[w] = map[int64]string{}
			wg.Add(1)
			go func(w int, tseed int64) {
				defer wg.Done()
				trng := rand.New(rand.NewSource(tseed))
				table := fmt.Sprintf("tenant%d", w)
				var nextID int64
				for i := 0; i < stmtsPerTenant; i++ {
					var q string
					var params []types.Value
					var mut func(map[int64]string)
					if r := trng.Intn(10); r < 7 || nextID == 0 {
						id := nextID
						val := fmt.Sprintf("s%d", i)
						q, params = "INSERT INTO "+table+" VALUES (?, ?)",
							[]types.Value{types.NewInt(id), types.NewString(val)}
						mut = func(m map[int64]string) { m[id] = val }
					} else if r < 9 {
						id := trng.Int63n(nextID)
						val := fmt.Sprintf("u%d", i)
						q, params = "UPDATE "+table+" SET val = ? WHERE id = ?",
							[]types.Value{types.NewString(val), types.NewInt(id)}
						mut = func(m map[int64]string) {
							if _, ok := m[id]; ok {
								m[id] = val
							}
						}
					} else {
						id := trng.Int63n(nextID)
						q, params = "DELETE FROM "+table+" WHERE id = ?",
							[]types.Value{types.NewInt(id)}
						mut = func(m map[int64]string) { delete(m, id) }
					}
					if _, err := db.Exec(q, params...); err != nil {
						pendings[w] = mut
						return
					}
					mut(acked[w])
					if q[0] == 'I' {
						nextID++
					}
				}
			}(w, int64(seed*100+w))
		}
		wg.Wait()

		db2, rep, err := engine.Recover(db.Crash())
		if err != nil {
			t.Fatalf("seed %d site %d: recover: %v (report %+v)", seed, site, err, rep)
		}
		got := snapshotDB(t, db2)
		for w := 0; w < tenants; w++ {
			table := fmt.Sprintf("tenant%d", w)
			rows, ok := got[table]
			if !ok {
				t.Fatalf("seed %d: table %s lost", seed, table)
			}
			if reflect.DeepEqual(rows, acked[w]) {
				continue
			}
			if pendings[w] != nil {
				withPending := map[int64]string{}
				for k, v := range acked[w] {
					withPending[k] = v
				}
				pendings[w](withPending)
				if reflect.DeepEqual(rows, withPending) {
					continue
				}
			}
			t.Fatalf("seed %d site %d: %s diverged:\n got   %v\nacked %v",
				seed, site, table, rows, acked[w])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
