package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func rec(kind Kind, stmt uint64) *Record {
	return &Record{Kind: kind, Txn: stmt, Page: 7, Slot: 2, Data: []byte("payload")}
}

func TestAppendSyncDurability(t *testing.T) {
	l := New(Config{})
	if got := l.DurableLSN(); got != 1 {
		t.Fatalf("empty log DurableLSN = %d, want 1", got)
	}
	var lsns []LSN
	for i := 0; i < 3; i++ {
		lsn, err := l.Append(rec(KHeapInsert, 1))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not increasing: %v", lsns)
		}
	}
	// Nothing durable before a sync.
	if got := l.DurableLSN(); got != 1 {
		t.Fatalf("pre-sync DurableLSN = %d, want 1", got)
	}
	if n := len(l.DurableRecords()); n != 0 {
		t.Fatalf("pre-sync durable records = %d, want 0", n)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != l.Head() {
		t.Fatalf("post-sync DurableLSN = %d, Head = %d", got, l.Head())
	}
	recs := l.DurableRecords()
	if len(recs) != 3 {
		t.Fatalf("durable records = %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] {
			t.Fatalf("decoded LSN[%d] = %d, want %d", i, r.LSN, lsns[i])
		}
		if r.Kind != KHeapInsert || r.Txn != 1 || r.Page != 7 || r.Slot != 2 || string(r.Data) != "payload" {
			t.Fatalf("decoded record mismatch: %+v", r)
		}
	}
}

func TestCrashDropsTail(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(rec(KHeapInsert, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append(rec(KHeapDelete, 2)); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash()
	if _, err := l.Append(rec(KHeapInsert, 3)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash = %v, want ErrCrashed", err)
	}
	l.Reopen()
	if n := len(l.DurableRecords()); n != 3 {
		t.Fatalf("post-reopen records = %d, want 3 (tail dropped)", n)
	}
	// The log works again after reopen.
	if _, err := l.Append(rec(KHeapInsert, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestPartialSyncTrimsTornFrame(t *testing.T) {
	l := New(Config{})
	lsn1, err := l.Append(rec(KHeapInsert, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(KHeapInsert, 1)); err != nil {
		t.Fatal(err)
	}
	// Tear the sync three bytes into the second frame.
	torn := int(lsn1-1) + 3
	l.SetFault(func(op FaultOp, seq int64) error {
		if op == OpSync {
			return &PartialSyncError{Bytes: torn}
		}
		return nil
	})
	err = l.Sync()
	var pse *PartialSyncError
	if !errors.As(err, &pse) {
		t.Fatalf("sync = %v, want PartialSyncError", err)
	}
	l.Reopen()
	recs := l.DurableRecords()
	if len(recs) != 1 {
		t.Fatalf("post-torn-sync records = %d, want 1", len(recs))
	}
	if recs[0].LSN != lsn1 {
		t.Fatalf("survivor LSN = %d, want %d", recs[0].LSN, lsn1)
	}
	if l.DurableLSN() != lsn1 {
		t.Fatalf("DurableLSN = %d, want %d (torn suffix trimmed)", l.DurableLSN(), lsn1)
	}
}

func TestTruncate(t *testing.T) {
	l := New(Config{})
	var lsns []LSN
	for i := 0; i < 4; i++ {
		lsn, err := l.Append(rec(KHeapInsert, 1))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Truncate to the start of the third record's frame, i.e. the second
	// record's end LSN.
	l.TruncateTo(lsns[1])
	if l.Base() != lsns[1] {
		t.Fatalf("Base = %d, want %d", l.Base(), lsns[1])
	}
	recs := l.DurableRecords()
	if len(recs) != 2 {
		t.Fatalf("post-truncate records = %d, want 2", len(recs))
	}
	if recs[0].LSN != lsns[2] || recs[1].LSN != lsns[3] {
		t.Fatalf("post-truncate LSNs = %d,%d want %d,%d", recs[0].LSN, recs[1].LSN, lsns[2], lsns[3])
	}
	if s := l.Stats(); s.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes not counted")
	}
	// Truncating backwards is a no-op.
	l.TruncateTo(1)
	if l.Base() != lsns[1] {
		t.Fatalf("backward truncate moved base to %d", l.Base())
	}
}

func TestGroupCommitBatching(t *testing.T) {
	l := New(Config{SyncLatency: 10 * time.Millisecond})
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(&Record{Kind: KCommit, Txn: uint64(i + 1)})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = l.Commit(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	s := l.Stats()
	if s.Commits != n {
		t.Fatalf("Commits = %d, want %d", s.Commits, n)
	}
	if s.Syncs >= n {
		t.Fatalf("group commit did not batch: %d syncs for %d commits", s.Syncs, n)
	}
	var hist int64
	for _, b := range s.BatchSizes {
		hist += b
	}
	if hist == 0 {
		t.Fatal("batch histogram empty")
	}
}

func TestNoGroupCommitSyncsEveryCommit(t *testing.T) {
	l := New(Config{NoGroupCommit: true})
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(&Record{Kind: KCommit, Txn: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Syncs != 5 {
		t.Fatalf("Syncs = %d, want 5 (one per commit)", s.Syncs)
	}
	if s.BatchSizes[0] != 5 {
		t.Fatalf("singleton batches = %d, want 5", s.BatchSizes[0])
	}
}

func TestBatchBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 100: 3}
	for n, want := range cases {
		if got := BatchBucket(n); got != want {
			t.Errorf("BatchBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestScopeCommitAndAbort(t *testing.T) {
	l := New(Config{})
	s, err := l.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if l.OldestActiveLSN() == storage.InfiniteLSN {
		t.Fatal("active statement not registered")
	}
	hl := s.HeapLogger("t")
	if err := hl.HeapInsert(3, 0, []byte("row")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.OldestActiveLSN() != storage.InfiniteLSN {
		t.Fatal("statement still active after commit")
	}
	recs := l.DurableRecords()
	kinds := []Kind{KBegin, KHeapInsert, KCommit}
	if len(recs) != len(kinds) {
		t.Fatalf("records = %d, want %d", len(recs), len(kinds))
	}
	for i, k := range kinds {
		if recs[i].Kind != k {
			t.Fatalf("record %d = %s, want %s", i, recs[i].Kind, k)
		}
	}

	s2, err := l.Begin()
	if err != nil {
		t.Fatal(err)
	}
	s2.Abort()
	if l.OldestActiveLSN() != storage.InfiniteLSN {
		t.Fatal("statement still active after abort")
	}
}

func TestCheckpointResetsByteTrigger(t *testing.T) {
	l := New(Config{})
	if _, err := l.Append(rec(KHeapInsert, 1)); err != nil {
		t.Fatal(err)
	}
	if l.BytesSinceCheckpoint() == 0 {
		t.Fatal("append did not advance checkpoint trigger")
	}
	start, lsn, err := l.AppendCheckpoint([]byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if start >= lsn {
		t.Fatalf("checkpoint frame start %d not before record LSN %d", start, lsn)
	}
	if l.BytesSinceCheckpoint() != 0 {
		t.Fatal("checkpoint did not reset byte trigger")
	}
	if s := l.Stats(); s.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", s.Checkpoints)
	}
}

func TestRecordRoundTripAllKinds(t *testing.T) {
	l := New(Config{})
	records := []*Record{
		{Kind: KBegin, Txn: 9},
		{Kind: KPageAlloc, Txn: 9, Page: 4, Cat: storage.CatIndex},
		{Kind: KHeapNewPage, Txn: 9, Page: 4, Table: "accounts"},
		{Kind: KHeapInsertAt, Txn: 9, Page: 4, Slot: 11, Data: []byte{1, 2, 3}},
		{Kind: KHeapUpdate, Txn: 9, Page: 4, Slot: 11, Data: []byte{}},
		{Kind: KBTreeInsert, Txn: 9, Page: 5, Key: []byte("k"), RID: storage.RID{Page: 4, Slot: 11}},
		{Kind: KBTreeImage, Txn: 9, Page: 5, Data: make([]byte, 256)},
		{Kind: KBTreeRoot, Txn: 9, Page: 5, Page2: 6},
		{Kind: KPageFree, Txn: 9, Page: 4, Cat: storage.CatData},
		{Kind: KCatalog, Txn: 9, Data: []byte(`{"op":"create_table"}`)},
		{Kind: KCommit, Txn: 9},
	}
	for _, r := range records {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append %s: %v", r.Kind, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := l.DurableRecords()
	if len(got) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(records))
	}
	for i, r := range got {
		w := records[i]
		if r.Kind != w.Kind || r.Txn != w.Txn || r.Page != w.Page || r.Page2 != w.Page2 ||
			r.Slot != w.Slot || r.Cat != w.Cat || r.RID != w.RID || r.Table != w.Table ||
			string(r.Key) != string(w.Key) || string(r.Data) != string(w.Data) {
			t.Fatalf("record %d round trip mismatch:\n got %+v\nwant %+v", i, r, w)
		}
	}
}
