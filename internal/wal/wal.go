package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// ErrCrashed is returned by every log operation after a (simulated)
// crash; the engine surfaces it to the session that hit the crash.
var ErrCrashed = errors.New("wal: log crashed")

// FaultOp distinguishes the log operations the crash harness can target.
type FaultOp uint8

const (
	// OpAppend is a record append into the volatile tail.
	OpAppend FaultOp = iota
	// OpSync is a durability barrier moving the tail into the durable
	// prefix. A fault here may leave a torn prefix of the tail durable.
	OpSync
)

func (op FaultOp) String() string {
	if op == OpSync {
		return "sync"
	}
	return "append"
}

// FaultFn inspects an imminent log operation; a non-nil return fails
// it. For OpSync the hook may return a *PartialSyncError to model a
// torn sync: that many tail bytes become durable before the failure.
type FaultFn func(op FaultOp, seq int64) error

// PartialSyncError is the torn-sync verdict: the sync crashes after
// Bytes bytes of the tail reached the durable prefix.
type PartialSyncError struct{ Bytes int }

func (e *PartialSyncError) Error() string { return "wal: injected torn sync" }

// Config parameterizes a Log.
type Config struct {
	// SyncLatency is added to every sync, modeling the fsync cost that
	// makes group commit worthwhile. Zero keeps unit tests fast.
	SyncLatency time.Duration
	// NoGroupCommit makes every commit issue its own sync instead of
	// piggybacking on an in-flight one (the benchmark's baseline mode).
	NoGroupCommit bool
}

// Stats is a snapshot of the log's durability counters.
type Stats struct {
	BytesAppended int64
	Records       int64
	Syncs         int64
	Commits       int64
	// BatchSizes histograms commits made durable per sync: buckets for
	// batch sizes 1, 2-3, 4-7, and 8+.
	BatchSizes [4]int64
	// Checkpoints counts KCheckpoint records appended.
	Checkpoints int64
	// TruncatedBytes counts log bytes reclaimed by checkpoints.
	TruncatedBytes int64
	// DurableBytes is the current durable log length (not reset).
	DurableBytes int64
}

// BatchBucket returns the BatchSizes index for a batch of n commits.
func BatchBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 3:
		return 1
	case n <= 7:
		return 2
	default:
		return 3
	}
}

// Log is the write-ahead log. It is safe for concurrent use; appends
// from concurrent statements interleave, each record tagged with its
// statement ID.
type Log struct {
	cfg Config

	// pool is the buffer pool whose pages the scopes stamp. Set once at
	// engine start via AttachPool; wal→storage is the only dependency
	// direction, so the mutual wiring lives here rather than in storage.
	pool *storage.BufferPool

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when a sync finishes
	durable []byte     // the prefix a crash preserves
	tail    []byte     // appended but not yet synced
	base    LSN        // stream offset of durable[0]
	crashed bool
	syncing bool

	nextTxn uint64
	active  map[uint64]LSN // stmt id -> begin-record LSN

	pendingCommits []LSN // commit records awaiting durability
	bytesSinceCkpt int64

	fault    FaultFn
	faultSeq atomic.Int64

	stats Stats
}

// New creates an empty log. The stream starts at LSN 1 so that LSN 0
// stays free to mean "never logged" on pages.
func New(cfg Config) *Log {
	l := &Log{cfg: cfg, base: 1, active: make(map[uint64]LSN)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// AttachPool wires the buffer pool whose pages statement scopes stamp
// with record LSNs.
func (l *Log) AttachPool(pool *storage.BufferPool) { l.pool = pool }

// SetFault installs (or removes) the fault hook. The operation sequence
// counter restarts on every install. A CrashPlan that needs one counter
// across disk and log operations keeps its own and ignores seq.
func (l *Log) SetFault(fn FaultFn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fault = fn
	l.faultSeq.Store(0)
}

func (l *Log) checkFaultLocked(op FaultOp) error {
	if l.fault == nil {
		return nil
	}
	return l.fault(op, l.faultSeq.Add(1))
}

func (l *Log) durableEndLocked() LSN { return l.base + LSN(len(l.durable)) }
func (l *Log) headLocked() LSN       { return l.durableEndLocked() + LSN(len(l.tail)) }

// DurableLSN returns the LSN through which the log is durable: a record
// is crash-safe iff its LSN is <= DurableLSN().
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableEndLocked()
}

// Base returns the LSN of the first byte still retained by the log —
// the truncation point, and the frame start of the first record
// DurableRecords returns.
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Head returns the LSN just past the last appended (possibly volatile)
// record.
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.headLocked()
}

// OldestActiveLSN returns the begin LSN of the oldest in-flight
// statement, or storage.InfiniteLSN when none is active. The buffer
// pool's no-steal gate keys off this.
func (l *Log) OldestActiveLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := storage.InfiniteLSN
	for _, lsn := range l.active {
		if lsn < oldest {
			oldest = lsn
		}
	}
	return oldest
}

// Append adds a record to the volatile tail and returns its LSN (the
// offset just past its frame). Nothing is durable until a sync covers
// it.
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(r)
}

// append is Append plus the frame's start offset, which scopes hand to
// StampLSN as the page's recLSN (the truncation bound that keeps the
// record replayable).
func (l *Log) append(r *Record) (start, lsn LSN, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start = l.headLocked()
	lsn, err = l.appendLocked(r)
	if err != nil {
		return 0, 0, err
	}
	return start, lsn, nil
}

func (l *Log) appendLocked(r *Record) (LSN, error) {
	if l.crashed {
		return 0, ErrCrashed
	}
	if err := l.checkFaultLocked(OpAppend); err != nil {
		// A crash verdict downs the whole log; any other injected error
		// fails just this append.
		if errors.Is(err, ErrCrashed) {
			l.crashed = true
			l.cond.Broadcast()
		}
		return 0, err
	}
	before := len(l.tail)
	l.tail = appendFrame(l.tail, r.encode(nil))
	n := int64(len(l.tail) - before)
	l.stats.BytesAppended += n
	l.stats.Records++
	l.bytesSinceCkpt += n
	r.LSN = l.headLocked()
	return r.LSN, nil
}

// Sync forces everything appended so far into the durable prefix.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// SyncTo forces the log durable through at least lsn (the storage
// WALGate hook; the buffer pool calls it before writing back a page
// whose pageLSN is past the durable horizon).
func (l *Log) SyncTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.durableEndLocked() >= lsn {
		return nil
	}
	return l.syncLocked()
}

// syncLocked moves the tail into the durable prefix. The caller holds
// l.mu. A torn-sync fault moves only a prefix and crashes the log.
func (l *Log) syncLocked() error {
	if l.crashed {
		return ErrCrashed
	}
	if err := l.checkFaultLocked(OpSync); err != nil {
		var partial *PartialSyncError
		if errors.As(err, &partial) {
			n := partial.Bytes
			if n > len(l.tail) {
				n = len(l.tail)
			}
			l.durable = append(l.durable, l.tail[:n]...)
			l.tail = l.tail[n:]
		}
		l.crashed = true
		l.cond.Broadcast()
		return err
	}
	if l.cfg.SyncLatency > 0 {
		l.mu.Unlock()
		time.Sleep(l.cfg.SyncLatency)
		l.mu.Lock()
		if l.crashed {
			return ErrCrashed
		}
	}
	l.durable = append(l.durable, l.tail...)
	l.tail = l.tail[:0]
	l.stats.Syncs++
	l.settleCommitsLocked()
	l.cond.Broadcast()
	return nil
}

// settleCommitsLocked moves newly durable commits out of the pending
// list and records the group-commit batch size.
func (l *Log) settleCommitsLocked() {
	end := l.durableEndLocked()
	kept := l.pendingCommits[:0]
	settled := 0
	for _, lsn := range l.pendingCommits {
		if lsn <= end {
			settled++
		} else {
			kept = append(kept, lsn)
		}
	}
	l.pendingCommits = kept
	if settled > 0 {
		l.stats.BatchSizes[BatchBucket(settled)]++
	}
}

// Commit waits until the log is durable through lsn (a commit record's
// LSN). With group commit, concurrent commits share one sync: the first
// waiter becomes the leader and syncs the whole tail — including
// records appended by statements that arrived while the leader slept in
// its fsync — and the followers find their LSN already durable.
func (l *Log) Commit(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Commits++
	l.pendingCommits = append(l.pendingCommits, lsn)
	if l.cfg.NoGroupCommit {
		// Baseline mode: every commit pays its own sync.
		for l.syncing {
			l.cond.Wait()
		}
		if l.crashed {
			return ErrCrashed
		}
		l.syncing = true
		err := l.syncLocked()
		l.syncing = false
		l.cond.Broadcast()
		return err
	}
	for {
		if l.durableEndLocked() >= lsn {
			return nil
		}
		if l.crashed {
			return ErrCrashed
		}
		if !l.syncing {
			break
		}
		l.cond.Wait()
	}
	l.syncing = true
	err := l.syncLocked()
	l.syncing = false
	l.cond.Broadcast()
	if err != nil {
		return err
	}
	if l.durableEndLocked() < lsn {
		return ErrCrashed
	}
	return nil
}

// Begin opens a transaction scope (one autocommit statement or one
// interactive multi-statement transaction): appends the begin record
// and registers the scope as active for the no-steal gate and for
// checkpoint truncation (an open scope's records must survive until
// its terminator is durable).
func (l *Log) Begin() (*Scope, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return nil, ErrCrashed
	}
	l.nextTxn++
	id := l.nextTxn
	lsn, err := l.appendLocked(&Record{Kind: KBegin, Txn: id})
	if err != nil {
		return nil, err
	}
	l.active[id] = lsn
	return &Scope{l: l, id: id}, nil
}

func (l *Log) endTxn(id uint64) {
	l.mu.Lock()
	delete(l.active, id)
	l.mu.Unlock()
}

// AppendCheckpoint writes a checkpoint record carrying the serialized
// catalog snapshot and dirty-page table. It returns the LSN of the
// frame's first byte (the truncation bound that keeps the record) and
// the record's LSN.
func (l *Log) AppendCheckpoint(payload []byte) (start, lsn LSN, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start = l.headLocked()
	lsn, err = l.appendLocked(&Record{Kind: KCheckpoint, Data: payload})
	if err != nil {
		return 0, 0, err
	}
	l.stats.Checkpoints++
	l.bytesSinceCkpt = 0
	return start, lsn, nil
}

// BytesSinceCheckpoint returns the log bytes appended since the last
// checkpoint (the engine's auto-checkpoint trigger).
func (l *Log) BytesSinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesSinceCkpt
}

// TruncateTo discards durable log bytes before lsn. The bound must not
// exceed the durable horizon; truncation never touches the tail.
func (l *Log) TruncateTo(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.base {
		return
	}
	end := l.durableEndLocked()
	if lsn > end {
		lsn = end
	}
	n := int(lsn - l.base)
	l.stats.TruncatedBytes += int64(n)
	l.durable = append([]byte(nil), l.durable[n:]...)
	l.base = lsn
}

// Crashed reports whether the log is down (explicit Crash or a fault
// verdict). The engine checks it before logging rollback compensations:
// on a dead log the physical undo still runs, unlogged — recovery will
// classify the transaction by the durable records alone.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Crash drops the volatile tail and fails every subsequent operation,
// modeling power loss. The durable prefix survives for recovery.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
	l.cond.Broadcast()
}

// Reopen readies a crashed log for recovery: the volatile tail and any
// torn durable suffix are discarded, the fault hook is cleared, and
// operations work again. Active-statement bookkeeping resets — those
// statements died with the crash.
func (l *Log) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = false
	l.tail = l.tail[:0]
	l.fault = nil
	l.syncing = false
	l.active = make(map[uint64]LSN)
	l.pendingCommits = nil
	_, end := decodeFrames(l.durable, l.base)
	l.durable = l.durable[:end-l.base]
}

// DurableRecords decodes the durable prefix, stopping at the first torn
// or corrupt frame. The result is what recovery has to work with.
func (l *Log) DurableRecords() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs, _ := decodeFrames(l.durable, l.base)
	return recs
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.DurableBytes = int64(len(l.durable))
	return s
}

// ResetStats zeroes the counters (DurableBytes is recomputed).
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}
