package plan

// Column pruning: a top-down pass that computes, for every base-table
// access in a plan, the set of physical columns the query actually
// touches — select-list expressions, filters and residuals, join keys,
// sort keys, group/aggregate arguments. The scans record that set
// (SeqScan.Needed, IndexScan.Needed, IndexNLJoin.NeededInner) and the
// executor decodes only those ordinals via types.DecodeRowPartial; all
// other positions come back as NULL, which is safe because nothing
// downstream reads them. This is the paper's §6.2 cost lever: queries
// over wide generic/chunk tables usually read a handful of logical
// columns, so partial decode skips most of a physical row's bytes —
// and, for strings, the per-value allocation.
//
// The pass is deterministic and overwrites the fields it owns, so
// re-running it (outer queries re-prune subquery plans already pruned
// when they were built) is idempotent. Project and HashAggregate
// conservatively treat every expression they hold as live rather than
// consulting the parent's need set: their output columns are cheap to
// compute once inputs are decoded, and it keeps evaluation semantics
// (e.g. errors raised by dead expressions) identical to the unpruned
// plan.

// PruneColumns annotates every base-table scan under root with the
// column set the plan actually reads. Safe to call on any SELECT plan;
// DML plans are left alone (index maintenance needs full rows).
func PruneColumns(root Node) {
	if root == nil {
		return
	}
	pruneNode(root, allNeeded(len(root.Schema())))
}

func allNeeded(n int) []bool {
	need := make([]bool, n)
	for i := range need {
		need[i] = true
	}
	return need
}

// DisablePruning clears every needed-column set under root so the
// executor decodes full rows. Benchmarks use it to measure the
// row-at-a-time full-decode baseline against the pruned batch path.
func DisablePruning(root Node) {
	if root == nil {
		return
	}
	switch n := root.(type) {
	case *SeqScan:
		n.Needed = nil
	case *IndexScan:
		n.Needed = nil
	case *IndexNLJoin:
		n.NeededInner = nil
	}
	walkPlanScalars(root, func(s Scalar) {
		if in, ok := s.(*InSubquery); ok {
			DisablePruning(in.Plan)
		}
	})
	for _, c := range root.Children() {
		DisablePruning(c)
	}
}

// markScalar records the input columns s reads into need and descends
// into IN-subquery plans (which are independent trees whose own outputs
// are all consumed by the membership check).
func markScalar(s Scalar, need []bool) {
	walkScalarTree(s, func(sc Scalar) {
		switch sc := sc.(type) {
		case *ColRef:
			if sc.Idx >= 0 && sc.Idx < len(need) {
				need[sc.Idx] = true
			}
		case *InSubquery:
			PruneColumns(sc.Plan)
		}
	})
}

func markScalars(ss []Scalar, need []bool) {
	for _, s := range ss {
		markScalar(s, need)
	}
}

// ordinals converts a need mask to the sorted ordinal list stored on
// scan nodes; nil when every column is needed (no pruning to do).
func ordinals(need []bool) []int {
	all := true
	count := 0
	for _, w := range need {
		if w {
			count++
		} else {
			all = false
		}
	}
	if all {
		return nil
	}
	out := make([]int, 0, count)
	for i, w := range need {
		if w {
			out = append(out, i)
		}
	}
	return out
}

// pruneNode pushes the parent's need set (over n's output schema) down
// the tree. len(need) == len(n.Schema()) at every call.
func pruneNode(n Node, need []bool) {
	switch n := n.(type) {
	case *SeqScan:
		markScalar(n.Filter, need)
		n.Needed = ordinals(need)
	case *IndexScan:
		markScalar(n.Residual, need)
		// Path scalars are evaluated against the nil row (constants and
		// params only), but walk them for IN-subquery plans.
		markScalars(n.Path.EqPrefix, need)
		markScalar(n.Path.Lo, need)
		markScalar(n.Path.Hi, need)
		n.Needed = ordinals(need)
	case *Filter:
		markScalar(n.Cond, need)
		pruneNode(n.Child, need)
	case *Project:
		childNeed := make([]bool, len(n.Child.Schema()))
		markScalars(n.Exprs, childNeed)
		pruneNode(n.Child, childNeed)
	case *HashJoin:
		lw := len(n.Left.Schema())
		leftNeed := make([]bool, lw)
		rightNeed := make([]bool, len(n.Right.Schema()))
		splitNeed(need, leftNeed, rightNeed)
		markScalars(n.LeftKeys, leftNeed)
		markScalars(n.RightKeys, rightNeed)
		markCombined(n.Residual, leftNeed, rightNeed)
		pruneNode(n.Left, leftNeed)
		pruneNode(n.Right, rightNeed)
	case *NLJoin:
		leftNeed := make([]bool, len(n.Left.Schema()))
		rightNeed := make([]bool, len(n.Right.Schema()))
		splitNeed(need, leftNeed, rightNeed)
		markCombined(n.Cond, leftNeed, rightNeed)
		pruneNode(n.Left, leftNeed)
		pruneNode(n.Right, rightNeed)
	case *IndexNLJoin:
		outerNeed := make([]bool, len(n.Outer.Schema()))
		innerNeed := make([]bool, len(n.Inner.Columns))
		splitNeed(need, outerNeed, innerNeed)
		// Access-path scalars see the outer row: join keys flow in there.
		markScalars(n.Path.EqPrefix, outerNeed)
		markScalar(n.Path.Lo, outerNeed)
		markScalar(n.Path.Hi, outerNeed)
		markCombined(n.Residual, outerNeed, innerNeed)
		n.NeededInner = ordinals(innerNeed)
		pruneNode(n.Outer, outerNeed)
	case *HashAggregate:
		childNeed := make([]bool, len(n.Child.Schema()))
		markScalars(n.GroupBy, childNeed)
		for _, a := range n.Aggs {
			markScalar(a.Arg, childNeed)
		}
		pruneNode(n.Child, childNeed)
	case *Sort:
		for _, k := range n.Keys {
			if k.Col >= 0 && k.Col < len(need) {
				need[k.Col] = true
			}
		}
		pruneNode(n.Child, need)
	case *Limit:
		pruneNode(n.Child, need)
	case *Distinct:
		// DISTINCT compares whole rows; every column participates.
		pruneNode(n.Child, allNeeded(len(n.Child.Schema())))
	case *Materialize:
		pruneNode(n.Sub, need)
	case *renameNode:
		pruneNode(n.child, need)
	case *Values:
		for _, row := range n.Rows {
			for _, s := range row {
				markScalar(s, nil)
			}
		}
	default:
		// Unknown wrappers: assume the child is fully consumed.
		for _, c := range n.Children() {
			pruneNode(c, allNeeded(len(c.Schema())))
		}
	}
}

// splitNeed distributes a combined-row need set over the left/right
// halves of a join output.
func splitNeed(need, left, right []bool) {
	for i, w := range need {
		if !w {
			continue
		}
		if i < len(left) {
			left[i] = true
		} else if i-len(left) < len(right) {
			right[i-len(left)] = true
		}
	}
}

// markCombined records the columns a combined-row scalar reads into the
// left/right need sets.
func markCombined(s Scalar, left, right []bool) {
	walkScalarTree(s, func(sc Scalar) {
		switch sc := sc.(type) {
		case *ColRef:
			if sc.Idx >= 0 && sc.Idx < len(left) {
				left[sc.Idx] = true
			} else if sc.Idx-len(left) >= 0 && sc.Idx-len(left) < len(right) {
				right[sc.Idx-len(left)] = true
			}
		case *InSubquery:
			PruneColumns(sc.Plan)
		}
	})
}
