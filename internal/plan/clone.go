package plan

// This file supports plan sharing across concurrent executions (the
// engine's plan cache). A cached plan is immutable at execution time
// with two exceptions:
//
//   - InSubquery carries per-execution state (the materialized set and
//     the executor's Materialize callback), so any plan containing one
//     must be cloned per execution (HasExecState detects this);
//   - HashJoin caches its child schemas lazily inside Schema(), so
//     WarmSchemas is called once before a plan is published to make
//     every subsequent Schema() call a pure read.
//
// Catalog objects (tables, indexes) and resolved column metadata are
// shared by clones: they are owned by the catalog and guarded by the
// engine's table/DDL locks.

// CloneForExec deep-copies a plan tree so its per-execution state
// (IN-subquery materialization) is private to the copy. Stateless
// scalars are still copied — the cost is negligible next to executing
// the plan, and it keeps the invariant simple: nothing in the returned
// tree aliases the cached original except catalog-owned metadata.
func CloneForExec(n Node) Node { return cloneNode(n) }

// HasExecState reports whether the plan carries per-execution state
// (today: any InSubquery scalar anywhere in the tree, including inside
// DML plans and nested subquery plans). Plans without such state can be
// executed concurrently without cloning.
func HasExecState(n Node) bool {
	found := false
	walkPlanScalars(n, func(s Scalar) {
		if _, ok := s.(*InSubquery); ok {
			found = true
		}
	})
	return found
}

// WarmSchemas forces every lazily computed schema in the tree (HashJoin
// caches its child column lists on first Schema() call) so a shared
// plan is read-only afterwards.
func WarmSchemas(n Node) {
	if n == nil {
		return
	}
	n.Schema()
	for _, c := range n.Children() {
		WarmSchemas(c)
	}
	for _, s := range scalarsOf(n) {
		walkScalarTree(s, func(sc Scalar) {
			if in, ok := sc.(*InSubquery); ok {
				WarmSchemas(in.Plan)
			}
		})
	}
}

func cloneNode(n Node) Node {
	switch n := n.(type) {
	case nil:
		return nil
	case *SeqScan:
		c := *n
		c.Filter = cloneScalar(n.Filter)
		return &c
	case *IndexScan:
		c := *n
		c.Path = clonePath(n.Path)
		c.Residual = cloneScalar(n.Residual)
		return &c
	case *Values:
		c := *n
		c.Rows = cloneScalarRows(n.Rows)
		return &c
	case *Filter:
		return &Filter{Child: cloneNode(n.Child), Cond: cloneScalar(n.Cond)}
	case *Project:
		c := *n
		c.Child = cloneNode(n.Child)
		c.Exprs = cloneScalars(n.Exprs)
		return &c
	case *HashJoin:
		c := *n
		c.Left, c.Right = cloneNode(n.Left), cloneNode(n.Right)
		c.LeftKeys = cloneScalars(n.LeftKeys)
		c.RightKeys = cloneScalars(n.RightKeys)
		c.Residual = cloneScalar(n.Residual)
		return &c
	case *IndexNLJoin:
		c := *n
		c.Outer = cloneNode(n.Outer)
		c.Path = clonePath(n.Path)
		c.Residual = cloneScalar(n.Residual)
		return &c
	case *NLJoin:
		c := *n
		c.Left, c.Right = cloneNode(n.Left), cloneNode(n.Right)
		c.Cond = cloneScalar(n.Cond)
		return &c
	case *HashAggregate:
		c := *n
		c.Child = cloneNode(n.Child)
		c.GroupBy = cloneScalars(n.GroupBy)
		if n.Aggs != nil {
			c.Aggs = make([]AggSpec, len(n.Aggs))
			for i, a := range n.Aggs {
				c.Aggs[i] = AggSpec{Func: a.Func, Arg: cloneScalar(a.Arg)}
			}
		}
		return &c
	case *Sort:
		c := *n
		c.Child = cloneNode(n.Child)
		return &c
	case *Limit:
		c := *n
		c.Child = cloneNode(n.Child)
		return &c
	case *Distinct:
		return &Distinct{Child: cloneNode(n.Child)}
	case *Materialize:
		c := *n
		c.Sub = cloneNode(n.Sub)
		return &c
	case *renameNode:
		return &renameNode{child: cloneNode(n.child), cols: n.cols}
	case *InsertPlan:
		c := *n
		c.Rows = cloneScalarRows(n.Rows)
		return &c
	case *UpdatePlan:
		c := *n
		c.Path = clonePathPtr(n.Path)
		c.Filter = cloneScalar(n.Filter)
		c.SetExprs = cloneScalars(n.SetExprs)
		return &c
	case *DeletePlan:
		c := *n
		c.Path = clonePathPtr(n.Path)
		c.Filter = cloneScalar(n.Filter)
		return &c
	}
	// Unknown node types are assumed stateless and shared as-is.
	return n
}

func clonePath(p AccessPath) AccessPath {
	c := p
	c.EqPrefix = cloneScalars(p.EqPrefix)
	c.Lo = cloneScalar(p.Lo)
	c.Hi = cloneScalar(p.Hi)
	return c
}

func clonePathPtr(p *AccessPath) *AccessPath {
	if p == nil {
		return nil
	}
	c := clonePath(*p)
	return &c
}

func cloneScalars(ss []Scalar) []Scalar {
	if ss == nil {
		return nil
	}
	out := make([]Scalar, len(ss))
	for i, s := range ss {
		out[i] = cloneScalar(s)
	}
	return out
}

func cloneScalarRows(rows [][]Scalar) [][]Scalar {
	if rows == nil {
		return nil
	}
	out := make([][]Scalar, len(rows))
	for i, r := range rows {
		out[i] = cloneScalars(r)
	}
	return out
}

func cloneScalar(s Scalar) Scalar {
	switch s := s.(type) {
	case nil:
		return nil
	case *ColRef:
		c := *s
		return &c
	case *Const:
		c := *s
		return &c
	case *ParamRef:
		c := *s
		return &c
	case *Binary:
		return &Binary{Op: s.Op, L: cloneScalar(s.L), R: cloneScalar(s.R)}
	case *Not:
		return &Not{X: cloneScalar(s.X)}
	case *Neg:
		return &Neg{X: cloneScalar(s.X)}
	case *IsNull:
		return &IsNull{X: cloneScalar(s.X), Not: s.Not}
	case *InList:
		return &InList{X: cloneScalar(s.X), List: cloneScalars(s.List), Not: s.Not}
	case *InSubquery:
		// Per-execution state (set, sawNull, Materialize) starts fresh;
		// the executor re-binds Materialize at Build time.
		return &InSubquery{X: cloneScalar(s.X), Plan: cloneNode(s.Plan), Not: s.Not}
	case *Like:
		return &Like{X: cloneScalar(s.X), Pattern: cloneScalar(s.Pattern), Not: s.Not}
	case *Cast:
		return &Cast{X: cloneScalar(s.X), Type: s.Type}
	}
	// Unknown scalar types are assumed stateless and shared as-is.
	return s
}

// scalarsOf lists the scalar expressions a node evaluates (mirrors the
// executor's traversal; kept here so plan-level walks need not import
// exec).
func scalarsOf(n Node) []Scalar {
	var out []Scalar
	add := func(ss ...Scalar) {
		for _, s := range ss {
			if s != nil {
				out = append(out, s)
			}
		}
	}
	switch n := n.(type) {
	case *SeqScan:
		add(n.Filter)
	case *IndexScan:
		add(n.Residual)
		add(n.Path.EqPrefix...)
		add(n.Path.Lo, n.Path.Hi)
	case *Filter:
		add(n.Cond)
	case *Project:
		add(n.Exprs...)
	case *HashJoin:
		add(n.LeftKeys...)
		add(n.RightKeys...)
		add(n.Residual)
	case *IndexNLJoin:
		add(n.Residual)
		add(n.Path.EqPrefix...)
		add(n.Path.Lo, n.Path.Hi)
	case *NLJoin:
		add(n.Cond)
	case *HashAggregate:
		add(n.GroupBy...)
		for _, a := range n.Aggs {
			add(a.Arg)
		}
	case *Values:
		for _, row := range n.Rows {
			add(row...)
		}
	case *UpdatePlan:
		add(n.Filter)
		add(n.SetExprs...)
		if n.Path != nil {
			add(n.Path.EqPrefix...)
			add(n.Path.Lo, n.Path.Hi)
		}
	case *DeletePlan:
		add(n.Filter)
		if n.Path != nil {
			add(n.Path.EqPrefix...)
			add(n.Path.Lo, n.Path.Hi)
		}
	case *InsertPlan:
		for _, row := range n.Rows {
			add(row...)
		}
	}
	return out
}

// walkPlanScalars visits every scalar in the tree, descending into
// children and into IN-subquery plans.
func walkPlanScalars(n Node, fn func(Scalar)) {
	if n == nil {
		return
	}
	for _, s := range scalarsOf(n) {
		walkScalarTree(s, func(sc Scalar) {
			fn(sc)
			if in, ok := sc.(*InSubquery); ok {
				walkPlanScalars(in.Plan, fn)
			}
		})
	}
	for _, c := range n.Children() {
		walkPlanScalars(c, fn)
	}
}

// walkScalarTree visits s and its operands.
func walkScalarTree(s Scalar, fn func(Scalar)) {
	if s == nil {
		return
	}
	fn(s)
	switch s := s.(type) {
	case *Binary:
		walkScalarTree(s.L, fn)
		walkScalarTree(s.R, fn)
	case *Not:
		walkScalarTree(s.X, fn)
	case *Neg:
		walkScalarTree(s.X, fn)
	case *IsNull:
		walkScalarTree(s.X, fn)
	case *InList:
		walkScalarTree(s.X, fn)
		for _, i := range s.List {
			walkScalarTree(i, fn)
		}
	case *InSubquery:
		walkScalarTree(s.X, fn)
	case *Like:
		walkScalarTree(s.X, fn)
		walkScalarTree(s.Pattern, fn)
	case *Cast:
		walkScalarTree(s.X, fn)
	}
}
