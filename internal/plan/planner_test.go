package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(0), 4<<20)
	cat := catalog.New(pool, catalog.Config{MemoryBytes: 4 << 20})
	mk := func(name string, cols []catalog.Column) {
		if _, err := cat.CreateTable(name, cols); err != nil {
			t.Fatal(err)
		}
	}
	mk("parent", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "name", Type: types.StringType},
		{Name: "col1", Type: types.IntType},
	})
	mk("child", []catalog.Column{
		{Name: "id", Type: types.IntType, NotNull: true},
		{Name: "parent", Type: types.IntType},
		{Name: "col1", Type: types.IntType},
	})
	if _, err := cat.CreateIndex("parent", "parent_pk", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("child", "child_fk", []string{"parent", "id"}, false); err != nil {
		t.Fatal(err)
	}
	return cat
}

func explainFor(t *testing.T, cat *catalog.Catalog, mode Mode, query string) string {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p := New(cat, mode)
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return Explain(n)
}

func TestIndexPathForUniqueEquality(t *testing.T) {
	cat := testCatalog(t)
	ex := explainFor(t, cat, Sophisticated, "SELECT name FROM parent WHERE id = 7")
	if !strings.Contains(ex, "IXSCAN") || !strings.Contains(ex, "parent_pk") {
		t.Errorf("plan:\n%s", ex)
	}
}

func TestIndexRangeScan(t *testing.T) {
	cat := testCatalog(t)
	ex := explainFor(t, cat, Sophisticated, "SELECT id FROM parent WHERE id > 5 AND id <= 10")
	if !strings.Contains(ex, "IXSCAN") {
		t.Errorf("range should use index:\n%s", ex)
	}
	// Compound prefix: equality on parent + range on id.
	ex = explainFor(t, cat, Sophisticated, "SELECT id FROM child WHERE parent = 3 AND id < 100")
	if !strings.Contains(ex, "child_fk") {
		t.Errorf("compound path:\n%s", ex)
	}
}

func TestNoUsableIndexFallsBackToScan(t *testing.T) {
	cat := testCatalog(t)
	ex := explainFor(t, cat, Sophisticated, "SELECT id FROM parent WHERE name = 'x'")
	if !strings.Contains(ex, "TBSCAN") {
		t.Errorf("plan:\n%s", ex)
	}
	// Residual predicate when index covers only part.
	ex = explainFor(t, cat, Sophisticated, "SELECT id FROM parent WHERE id = 1 AND name = 'x'")
	if !strings.Contains(ex, "IXSCAN") || !strings.Contains(ex, "residual") {
		t.Errorf("plan:\n%s", ex)
	}
}

func TestIndexNLJoinChosen(t *testing.T) {
	cat := testCatalog(t)
	// The paper's Q2: selective parent lookup, child joined via FK index.
	ex := explainFor(t, cat, Sophisticated,
		"SELECT p.col1, c.col1 FROM parent p, child c WHERE p.id = c.parent AND p.id = ?")
	if !strings.Contains(ex, "NLJOIN") {
		t.Errorf("expected index NL join:\n%s", ex)
	}
	if !strings.Contains(ex, "child_fk") {
		t.Errorf("join should probe the FK index:\n%s", ex)
	}
	// Sophisticated should drive from parent (the selective side).
	lines := strings.Split(ex, "\n")
	var first string
	for _, l := range lines {
		if strings.Contains(l, "SCAN") {
			first = l
			break
		}
	}
	if !strings.Contains(first, "parent") {
		t.Errorf("driving table should be parent:\n%s", ex)
	}
}

func TestNaiveFollowsFromOrder(t *testing.T) {
	cat := testCatalog(t)
	// With child listed first, naive mode drives from child even though
	// parent has the selective predicate.
	ex := explainFor(t, cat, Naive,
		"SELECT p.col1 FROM child c, parent p WHERE p.id = c.parent AND p.id = 3")
	lines := strings.Split(ex, "\n")
	var first string
	for _, l := range lines {
		if strings.Contains(l, "SCAN") {
			first = l
			break
		}
	}
	if !strings.Contains(first, "child") {
		t.Errorf("naive should drive from child:\n%s", ex)
	}
	// Sophisticated reorders regardless of FROM order.
	ex = explainFor(t, cat, Sophisticated,
		"SELECT p.col1 FROM child c, parent p WHERE p.id = c.parent AND p.id = 3")
	for _, l := range strings.Split(ex, "\n") {
		if strings.Contains(l, "SCAN") {
			first = l
			break
		}
	}
	if !strings.Contains(first, "parent") {
		t.Errorf("sophisticated should drive from parent:\n%s", ex)
	}
}

func TestFlatteningModes(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT a FROM (SELECT col1 AS a, id FROM parent WHERE col1 > 0) AS sub WHERE id = 4"
	soph := explainFor(t, cat, Sophisticated, q)
	if strings.Contains(soph, "TEMP") || strings.Contains(soph, "SUBQ") {
		t.Errorf("sophisticated should flatten:\n%s", soph)
	}
	if !strings.Contains(soph, "IXSCAN") {
		t.Errorf("flattened query should push id=4 into the index:\n%s", soph)
	}
	naive := explainFor(t, cat, Naive, q)
	if !strings.Contains(naive, "TEMP") {
		t.Errorf("naive should materialize:\n%s", naive)
	}
}

func TestFlattenAliasCollision(t *testing.T) {
	cat := testCatalog(t)
	// Inner uses alias p that collides with the outer p.
	q := "SELECT p.id, sub.a FROM parent p, (SELECT p.col1 AS a, p.id AS pid FROM parent p) AS sub WHERE p.id = sub.pid"
	ex := explainFor(t, cat, Sophisticated, q)
	if strings.Contains(ex, "SUBQ") {
		t.Errorf("collision case should still flatten (with rename):\n%s", ex)
	}
}

func TestNonFlattenableSubquery(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT n FROM (SELECT COUNT(*) AS n FROM parent GROUP BY name) AS sub WHERE n > 1"
	ex := explainFor(t, cat, Sophisticated, q)
	if !strings.Contains(ex, "GRPBY") {
		t.Errorf("aggregate subquery must be preserved:\n%s", ex)
	}
}

func TestDMLPlansUseIndexes(t *testing.T) {
	cat := testCatalog(t)
	ex := explainFor(t, cat, Sophisticated, "UPDATE parent SET name = 'x' WHERE id = 3")
	if !strings.Contains(ex, "UPDATE") {
		t.Errorf("plan:\n%s", ex)
	}
	st, _ := sql.Parse("UPDATE parent SET name = 'x' WHERE id = 3")
	p := New(cat, Sophisticated)
	n, err := p.PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	up := n.(*UpdatePlan)
	if up.Path == nil || up.Path.Index.Name != "parent_pk" {
		t.Errorf("update should use PK path: %+v", up.Path)
	}
	st, _ = sql.Parse("DELETE FROM child WHERE parent = 5")
	n, err = p.PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	del := n.(*DeletePlan)
	if del.Path == nil || del.Path.Index.Name != "child_fk" {
		t.Errorf("delete should use FK path: %+v", del.Path)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog(t)
	p := New(cat, Sophisticated)
	bad := []string{
		"SELECT nosuch FROM parent",
		"SELECT id FROM nosuch",
		"SELECT id FROM parent, child", // ambiguous id
		"SELECT name, COUNT(*) FROM parent",
		"SELECT NOSUCHFUNC(id) FROM parent",
		"UPDATE parent SET nosuch = 1",
		"INSERT INTO parent (nosuch) VALUES (1)",
		"INSERT INTO parent (id) VALUES (1, 2)",
	}
	for _, q := range bad {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := p.PlanStatement(st); err == nil {
			t.Errorf("plan(%q) should fail", q)
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"Acme", "Acme", true},
		{"Acme", "A%", true},
		{"Acme", "%e", true},
		{"Acme", "A_me", true},
		{"Acme", "a%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "%%c", true},
		{"mississippi", "%ss%pp%", true},
		{"mississippi", "%ss%xx%", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestScalarThreeValuedLogic(t *testing.T) {
	null := &Const{Val: types.Null()}
	tr := &Const{Val: types.NewBool(true)}
	fa := &Const{Val: types.NewBool(false)}
	cases := []struct {
		e    Scalar
		want types.Value
	}{
		{&Binary{Op: sql.OpAnd, L: null, R: fa}, types.NewBool(false)},
		{&Binary{Op: sql.OpAnd, L: null, R: tr}, types.Null()},
		{&Binary{Op: sql.OpOr, L: null, R: tr}, types.NewBool(true)},
		{&Binary{Op: sql.OpOr, L: null, R: fa}, types.Null()},
		{&Not{X: null}, types.Null()},
		{&Binary{Op: sql.OpEq, L: null, R: null}, types.Null()},
		{&IsNull{X: null}, types.NewBool(true)},
		{&IsNull{X: tr, Not: true}, types.NewBool(true)},
	}
	for i, c := range cases {
		got, err := c.e.Eval(nil, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Kind != c.want.Kind || (got.Kind == types.KindBool && got.Bool() != c.want.Bool()) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestInListNullSemantics(t *testing.T) {
	// 1 IN (2, NULL) must be NULL (unknown), not FALSE.
	e := &InList{
		X:    &Const{Val: types.NewInt(1)},
		List: []Scalar{&Const{Val: types.NewInt(2)}, &Const{Val: types.Null()}},
	}
	v, err := e.Eval(nil, nil)
	if err != nil || !v.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, %v; want NULL", v, err)
	}
	// 2 IN (2, NULL) is TRUE.
	e.X = &Const{Val: types.NewInt(2)}
	v, _ = e.Eval(nil, nil)
	if !IsTrue(v) {
		t.Errorf("2 IN (2, NULL) = %v; want TRUE", v)
	}
}

func TestArithmetic(t *testing.T) {
	i := func(n int64) Scalar { return &Const{Val: types.NewInt(n)} }
	f := func(x float64) Scalar { return &Const{Val: types.NewFloat(x)} }
	cases := []struct {
		e    Scalar
		want types.Value
	}{
		{&Binary{Op: sql.OpAdd, L: i(2), R: i(3)}, types.NewInt(5)},
		{&Binary{Op: sql.OpSub, L: i(2), R: i(3)}, types.NewInt(-1)},
		{&Binary{Op: sql.OpMul, L: i(4), R: f(0.5)}, types.NewFloat(2)},
		{&Binary{Op: sql.OpDiv, L: i(7), R: i(2)}, types.NewInt(3)},
		{&Binary{Op: sql.OpDiv, L: f(7), R: i(2)}, types.NewFloat(3.5)},
		{&Neg{X: i(5)}, types.NewInt(-5)},
	}
	for idx, c := range cases {
		got, err := c.e.Eval(nil, nil)
		if err != nil || !types.Equal(got, c.want) || got.Kind != c.want.Kind {
			t.Errorf("case %d: got %v (%v), want %v", idx, got, err, c.want)
		}
	}
	if _, err := (&Binary{Op: sql.OpDiv, L: i(1), R: i(0)}).Eval(nil, nil); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := (&Binary{Op: sql.OpDiv, L: f(1), R: f(0)}).Eval(nil, nil); err == nil {
		t.Error("float division by zero should error")
	}
}
