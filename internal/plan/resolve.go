package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// scope is the column namespace an expression resolves against.
type scope struct {
	cols []ColInfo
}

// resolveColumn finds the ordinal of a (possibly qualified) column,
// erroring on unknown or ambiguous names.
func (sc *scope) resolveColumn(qual, name string) (int, error) {
	found := -1
	for i, c := range sc.cols {
		if c.Hidden {
			continue // dropped slot: the name is gone, the position is not
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: ambiguous column %s", displayName(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %s", displayName(qual, name))
	}
	return found, nil
}

// has reports whether the scope can resolve the column unambiguously.
func (sc *scope) has(qual, name string) bool {
	_, err := sc.resolveColumn(qual, name)
	return err == nil
}

func displayName(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}

// resolveExpr turns an AST expression into an executable Scalar.
// Aggregate function calls are rejected here; the aggregate path
// rewrites them away before calling this.
func (p *Planner) resolveExpr(e sql.Expr, sc *scope) (Scalar, error) {
	switch e := e.(type) {
	case *sql.ColumnRef:
		idx, err := sc.resolveColumn(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return &ColRef{Idx: idx, Name: displayName(e.Table, e.Name)}, nil
	case *sql.Literal:
		return &Const{Val: e.Val}, nil
	case *sql.Param:
		return &ParamRef{Idx: e.Index}, nil
	case *sql.BinaryExpr:
		l, err := p.resolveExpr(e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := p.resolveExpr(e.R, sc)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: e.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		x, err := p.resolveExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		if e.Op == sql.OpNot {
			return &Not{X: x}, nil
		}
		return &Neg{X: x}, nil
	case *sql.IsNullExpr:
		x, err := p.resolveExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: x, Not: e.Not}, nil
	case *sql.LikeExpr:
		x, err := p.resolveExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		pat, err := p.resolveExpr(e.Pattern, sc)
		if err != nil {
			return nil, err
		}
		return &Like{X: x, Pattern: pat, Not: e.Not}, nil
	case *sql.CastExpr:
		x, err := p.resolveExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		return &Cast{X: x, Type: e.Type}, nil
	case *sql.InExpr:
		x, err := p.resolveExpr(e.X, sc)
		if err != nil {
			return nil, err
		}
		if e.Subquery != nil {
			sub, err := p.PlanSelect(e.Subquery)
			if err != nil {
				return nil, fmt.Errorf("plan: IN subquery: %w", err)
			}
			if len(sub.Schema()) != 1 {
				return nil, fmt.Errorf("plan: IN subquery must return one column")
			}
			return &InSubquery{X: x, Plan: sub, Not: e.Not}, nil
		}
		list := make([]Scalar, len(e.List))
		for i, item := range e.List {
			s, err := p.resolveExpr(item, sc)
			if err != nil {
				return nil, err
			}
			list[i] = s
		}
		return &InList{X: x, List: list, Not: e.Not}, nil
	case *sql.FuncExpr:
		if _, isAgg := aggFuncs[e.Name]; isAgg {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", e.Name)
		}
		return nil, fmt.Errorf("plan: unknown function %s", e.Name)
	}
	return nil, fmt.Errorf("plan: cannot resolve %T", e)
}

var aggFuncs = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

// exprType infers a display type for a resolved output column; best
// effort (used for derived-table schemas).
func exprType(e sql.Expr, sc *scope) types.ColumnType {
	switch e := e.(type) {
	case *sql.ColumnRef:
		if idx, err := sc.resolveColumn(e.Table, e.Name); err == nil {
			return sc.cols[idx].Type
		}
	case *sql.Literal:
		return types.ColumnType{Kind: e.Val.Kind}
	case *sql.CastExpr:
		return e.Type
	case *sql.FuncExpr:
		switch aggFuncs[e.Name] {
		case AggCount, AggCountStar:
			return types.IntType
		case AggAvg:
			return types.FloatType
		}
		if len(e.Args) == 1 {
			return exprType(e.Args[0], sc)
		}
	case *sql.BinaryExpr:
		lt := exprType(e.L, sc)
		rt := exprType(e.R, sc)
		if lt.Kind == types.KindFloat || rt.Kind == types.KindFloat {
			return types.FloatType
		}
		return lt
	}
	return types.ColumnType{Kind: types.KindString}
}

// containsAgg reports whether the AST expression contains an aggregate
// function call.
func containsAgg(e sql.Expr) bool {
	switch e := e.(type) {
	case *sql.FuncExpr:
		if _, ok := aggFuncs[e.Name]; ok {
			return true
		}
		for _, a := range e.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *sql.BinaryExpr:
		return containsAgg(e.L) || containsAgg(e.R)
	case *sql.UnaryExpr:
		return containsAgg(e.X)
	case *sql.IsNullExpr:
		return containsAgg(e.X)
	case *sql.LikeExpr:
		return containsAgg(e.X) || containsAgg(e.Pattern)
	case *sql.CastExpr:
		return containsAgg(e.X)
	case *sql.InExpr:
		if containsAgg(e.X) {
			return true
		}
		for _, i := range e.List {
			if containsAgg(i) {
				return true
			}
		}
	}
	return false
}

// collectColumnRefs appends every column reference in e to out.
func collectColumnRefs(e sql.Expr, out *[]*sql.ColumnRef) {
	switch e := e.(type) {
	case *sql.ColumnRef:
		*out = append(*out, e)
	case *sql.BinaryExpr:
		collectColumnRefs(e.L, out)
		collectColumnRefs(e.R, out)
	case *sql.UnaryExpr:
		collectColumnRefs(e.X, out)
	case *sql.IsNullExpr:
		collectColumnRefs(e.X, out)
	case *sql.LikeExpr:
		collectColumnRefs(e.X, out)
		collectColumnRefs(e.Pattern, out)
	case *sql.CastExpr:
		collectColumnRefs(e.X, out)
	case *sql.FuncExpr:
		for _, a := range e.Args {
			collectColumnRefs(a, out)
		}
	case *sql.InExpr:
		collectColumnRefs(e.X, out)
		for _, i := range e.List {
			collectColumnRefs(i, out)
		}
		// Subquery refs are resolved in their own scope (uncorrelated).
	}
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e sql.Expr, out *[]sql.Expr) {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == sql.OpAnd {
		splitConjuncts(b.L, out)
		splitConjuncts(b.R, out)
		return
	}
	*out = append(*out, e)
}

// andAll combines conjuncts back into a single expression (nil if none).
func andAll(conjs []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &sql.BinaryExpr{Op: sql.OpAnd, L: out, R: c}
		}
	}
	return out
}

// andScalars combines resolved conjuncts (nil if none).
func andScalars(conjs []Scalar) Scalar {
	var out Scalar
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &Binary{Op: sql.OpAnd, L: out, R: c}
		}
	}
	return out
}
