package plan

import (
	"fmt"

	"repro/internal/sql"
)

func (p *Planner) planInsert(st *sql.InsertStmt) (Node, error) {
	t, err := p.Cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var colMap []int
	if len(st.Columns) == 0 {
		// Bare INSERT targets the visible columns of the planner's schema
		// epoch, in order; dropped slots are not insertable.
		for ord, c := range p.physCols(t) {
			if !c.Dropped {
				colMap = append(colMap, ord)
			}
		}
	} else {
		colMap = make([]int, len(st.Columns))
		for i, name := range st.Columns {
			ord := p.colIndex(t, name)
			if ord < 0 {
				return nil, fmt.Errorf("plan: no column %s in %s", name, st.Table)
			}
			colMap[i] = ord
		}
	}
	empty := &scope{}
	plan := &InsertPlan{Table: t, ColMap: colMap}
	for _, row := range st.Rows {
		if len(row) != len(colMap) {
			return nil, fmt.Errorf("plan: INSERT row has %d values, want %d", len(row), len(colMap))
		}
		scalars := make([]Scalar, len(row))
		for i, e := range row {
			s, err := p.resolveExpr(e, empty)
			if err != nil {
				return nil, fmt.Errorf("plan: INSERT values must be constant: %w", err)
			}
			scalars[i] = s
		}
		plan.Rows = append(plan.Rows, scalars)
	}
	return plan, nil
}

// planWriteAccess picks the access path and residual filter for UPDATE
// and DELETE statements from the WHERE clause.
func (p *Planner) planWriteAccess(tableName, alias string, where sql.Expr) (*source, *AccessPath, Scalar, error) {
	t, err := p.Cat.Table(tableName)
	if err != nil {
		return nil, nil, nil, err
	}
	if alias == "" {
		alias = tableName
	}
	src := &source{table: t, alias: alias, cols: p.tableSchema(t, alias)}
	sc := &scope{cols: src.cols}
	var conjs []sql.Expr
	if where != nil {
		splitConjuncts(where, &conjs)
	}
	cands := p.indexCandidates(src, conjs, nil)
	path, consumed := p.chooseIndexPath(t, cands)
	var residualConjs []sql.Expr
	if path != nil {
		if err := p.resolvePath(path, &scope{}); err != nil {
			return nil, nil, nil, err
		}
		residualConjs = subtract(conjs, consumed)
	} else {
		residualConjs = conjs
	}
	residual, err := p.resolveExprList(residualConjs, sc)
	if err != nil {
		return nil, nil, nil, err
	}
	return src, path, residual, nil
}

func (p *Planner) planUpdate(st *sql.UpdateStmt) (Node, error) {
	src, path, filter, err := p.planWriteAccess(st.Table, st.Alias, st.Where)
	if err != nil {
		return nil, err
	}
	sc := &scope{cols: src.cols}
	plan := &UpdatePlan{Table: src.table, Alias: src.alias, Path: path, Filter: filter}
	for _, a := range st.Set {
		ord := p.colIndex(src.table, a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("plan: no column %s in %s", a.Column, st.Table)
		}
		e, err := p.resolveExpr(a.Value, sc)
		if err != nil {
			return nil, err
		}
		plan.SetCols = append(plan.SetCols, ord)
		plan.SetExprs = append(plan.SetExprs, e)
	}
	if len(plan.SetCols) == 0 {
		return nil, fmt.Errorf("plan: UPDATE without SET")
	}
	return plan, nil
}

func (p *Planner) planDelete(st *sql.DeleteStmt) (Node, error) {
	src, path, filter, err := p.planWriteAccess(st.Table, st.Alias, st.Where)
	if err != nil {
		return nil, err
	}
	return &DeletePlan{Table: src.table, Alias: src.alias, Path: path, Filter: filter}, nil
}
