package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// Values produces literal rows (used for FROM-less SELECTs and INSERT
// sources).
type Values struct {
	Rows [][]Scalar
	Cols []ColInfo
}

// Schema implements Node.
func (v *Values) Schema() []ColInfo { return v.Cols }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// Label implements Node.
func (v *Values) Label() string { return "VALUES" }

// Detail implements Node.
func (v *Values) Detail() string { return fmt.Sprintf("%d rows", len(v.Rows)) }

// PlanSelect compiles a SELECT into a physical plan.
func (p *Planner) PlanSelect(s *sql.SelectStmt) (Node, error) {
	if p.Mode == Sophisticated {
		var err error
		s, err = p.flattenSubqueries(s)
		if err != nil {
			return nil, err
		}
	}
	input, err := p.planFrom(s)
	if err != nil {
		return nil, err
	}
	inScope := &scope{cols: input.Schema()}

	// Expand stars now so the aggregate check sees real expressions.
	items, err := expandStars(s.Items, inScope)
	if err != nil {
		return nil, err
	}

	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	for _, o := range s.OrderBy {
		if containsAgg(o.Expr) {
			hasAgg = true
		}
	}

	var node Node
	var outScope *scope
	var outExprs []Scalar
	var outCols []ColInfo

	if hasAgg {
		node, outScope, err = p.planAggregate(input, inScope, s, items)
		if err != nil {
			return nil, err
		}
		agg := node.(*HashAggregate)
		rw := &aggRewriter{p: p, agg: agg, inScope: inScope}
		// HAVING runs over the aggregate output.
		if s.Having != nil {
			cond, err := rw.rewrite(s.Having)
			if err != nil {
				return nil, err
			}
			node = &Filter{Child: node, Cond: cond}
		}
		for _, it := range items {
			e, err := rw.rewrite(it.Expr)
			if err != nil {
				return nil, err
			}
			outExprs = append(outExprs, e)
			outCols = append(outCols, ColInfo{Name: itemName(it), Type: exprType(it.Expr, inScope)})
		}
		_ = outScope
	} else {
		node = input
		for _, it := range items {
			e, err := p.resolveExpr(it.Expr, inScope)
			if err != nil {
				return nil, err
			}
			outExprs = append(outExprs, e)
			outCols = append(outCols, ColInfo{Name: itemName(it), Type: exprType(it.Expr, inScope)})
		}
	}

	// ORDER BY: keys matching a select item (by alias or printed text)
	// sort the projected output; anything else becomes a hidden
	// projected column that a final projection trims away.
	visible := len(outExprs)
	var sortKeys []SortKey
	for _, o := range s.OrderBy {
		idx := matchSelectItem(o.Expr, items)
		if idx < 0 {
			var e Scalar
			var err error
			if hasAgg {
				rw := &aggRewriter{p: p, agg: node.(aggChildFinder).findAgg(), inScope: inScope}
				e, err = rw.rewrite(o.Expr)
			} else {
				e, err = p.resolveExpr(o.Expr, inScope)
			}
			if err != nil {
				return nil, err
			}
			outExprs = append(outExprs, e)
			outCols = append(outCols, ColInfo{Name: o.Expr.String()})
			idx = len(outExprs) - 1
		}
		sortKeys = append(sortKeys, SortKey{Col: idx, Desc: o.Desc})
	}

	node = &Project{Child: node, Exprs: outExprs, Cols: outCols}
	if s.Distinct {
		node = &Distinct{Child: node}
	}
	if len(sortKeys) > 0 {
		node = &Sort{Child: node, Keys: sortKeys}
	}
	if visible < len(outExprs) {
		trimmed := make([]Scalar, visible)
		for i := 0; i < visible; i++ {
			trimmed[i] = &ColRef{Idx: i, Name: outCols[i].Name}
		}
		node = &Project{Child: node, Exprs: trimmed, Cols: outCols[:visible]}
	}
	if s.Limit != nil {
		node = &Limit{Child: node, N: *s.Limit}
	}
	PruneColumns(node)
	return node, nil
}

// aggChildFinder lets the ORDER BY path locate the aggregate under an
// optional HAVING filter.
type aggChildFinder interface{ findAgg() *HashAggregate }

func (a *HashAggregate) findAgg() *HashAggregate { return a }
func (f *Filter) findAgg() *HashAggregate {
	if ac, ok := f.Child.(aggChildFinder); ok {
		return ac.findAgg()
	}
	return nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sql.ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.String()
}

func expandStars(items []sql.SelectItem, sc *scope) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range sc.cols {
			if c.Hidden {
				continue
			}
			if it.StarQualifier != "" && !strings.EqualFold(c.Qual, it.StarQualifier) {
				continue
			}
			out = append(out, sql.SelectItem{
				Expr:  &sql.ColumnRef{Table: c.Qual, Name: c.Name},
				Alias: c.Name,
			})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("plan: %s.* matches no columns", it.StarQualifier)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}

// matchSelectItem finds the select item an ORDER BY key refers to,
// either by alias or by identical printed text.
func matchSelectItem(e sql.Expr, items []sql.SelectItem) int {
	if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
		for i, it := range items {
			if strings.EqualFold(itemName(it), cr.Name) {
				return i
			}
		}
	}
	txt := strings.ToLower(e.String())
	for i, it := range items {
		if strings.ToLower(it.Expr.String()) == txt {
			return i
		}
	}
	return -1
}

// planAggregate builds the HashAggregate node: group-by expressions
// resolved against the input, plus every distinct aggregate call found
// in the select list, HAVING, and ORDER BY.
func (p *Planner) planAggregate(input Node, inScope *scope, s *sql.SelectStmt, items []sql.SelectItem) (Node, *scope, error) {
	agg := &HashAggregate{Child: input}
	for _, g := range s.GroupBy {
		e, err := p.resolveExpr(g, inScope)
		if err != nil {
			return nil, nil, err
		}
		agg.GroupBy = append(agg.GroupBy, e)
		name := g.String()
		if cr, ok := g.(*sql.ColumnRef); ok {
			name = cr.Name
		}
		agg.Cols = append(agg.Cols, ColInfo{Name: name, Type: exprType(g, inScope)})
	}
	agg.groupASTs = append(agg.groupASTs, s.GroupBy...)

	var collect func(e sql.Expr) error
	seen := map[string]bool{}
	collect = func(e sql.Expr) error {
		switch e := e.(type) {
		case *sql.FuncExpr:
			f, isAgg := aggFuncs[e.Name]
			if !isAgg {
				return fmt.Errorf("plan: unknown function %s", e.Name)
			}
			key := strings.ToLower(e.String())
			if seen[key] {
				return nil
			}
			seen[key] = true
			spec := AggSpec{Func: f}
			if e.Star {
				if f != AggCount {
					return fmt.Errorf("plan: %s(*) is not valid", e.Name)
				}
				spec.Func = AggCountStar
			} else {
				if len(e.Args) != 1 {
					return fmt.Errorf("plan: %s takes one argument", e.Name)
				}
				arg, err := p.resolveExpr(e.Args[0], inScope)
				if err != nil {
					return err
				}
				spec.Arg = arg
			}
			agg.Aggs = append(agg.Aggs, spec)
			agg.aggASTs = append(agg.aggASTs, e)
			agg.Cols = append(agg.Cols, ColInfo{Name: e.String(), Type: exprType(e, inScope)})
			return nil
		case *sql.BinaryExpr:
			if err := collect(e.L); err != nil {
				return err
			}
			return collect(e.R)
		case *sql.UnaryExpr:
			return collect(e.X)
		case *sql.IsNullExpr:
			return collect(e.X)
		case *sql.CastExpr:
			return collect(e.X)
		case *sql.LikeExpr:
			if err := collect(e.X); err != nil {
				return err
			}
			return collect(e.Pattern)
		case *sql.InExpr:
			if err := collect(e.X); err != nil {
				return err
			}
			for _, i := range e.List {
				if err := collect(i); err != nil {
					return err
				}
			}
		}
		return nil
	}
	walk := func(e sql.Expr) error {
		if e == nil || !containsAgg(e) {
			return nil
		}
		return collect(e)
	}
	for _, it := range items {
		if err := walk(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if err := walk(s.Having); err != nil {
		return nil, nil, err
	}
	for _, o := range s.OrderBy {
		if err := walk(o.Expr); err != nil {
			return nil, nil, err
		}
	}
	return agg, &scope{cols: agg.Cols}, nil
}

// aggRewriter rewrites post-aggregation expressions: group-by
// expressions and aggregate calls become column references into the
// HashAggregate output; anything else must be composed of those.
type aggRewriter struct {
	p       *Planner
	agg     *HashAggregate
	inScope *scope
}

func (rw *aggRewriter) rewrite(e sql.Expr) (Scalar, error) {
	txt := strings.ToLower(e.String())
	for i, g := range rw.agg.groupASTs {
		if strings.ToLower(g.String()) == txt {
			return &ColRef{Idx: i, Name: rw.agg.Cols[i].Name}, nil
		}
		// An unqualified reference also matches a qualified group key.
		if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
			if gr, ok := g.(*sql.ColumnRef); ok && strings.EqualFold(gr.Name, cr.Name) {
				return &ColRef{Idx: i, Name: rw.agg.Cols[i].Name}, nil
			}
		}
	}
	for j, a := range rw.agg.aggASTs {
		if strings.ToLower(a.String()) == txt {
			idx := len(rw.agg.GroupBy) + j
			return &ColRef{Idx: idx, Name: rw.agg.Cols[idx].Name}, nil
		}
	}
	switch e := e.(type) {
	case *sql.Literal:
		return &Const{Val: e.Val}, nil
	case *sql.Param:
		return &ParamRef{Idx: e.Index}, nil
	case *sql.BinaryExpr:
		l, err := rw.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: e.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		if e.Op == sql.OpNot {
			return &Not{X: x}, nil
		}
		return &Neg{X: x}, nil
	case *sql.IsNullExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: x, Not: e.Not}, nil
	case *sql.CastExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &Cast{X: x, Type: e.Type}, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", e)
	}
	return nil, fmt.Errorf("plan: cannot use %s after aggregation", e)
}
