package plan

import (
	"strings"
	"testing"

	"repro/internal/sql"
)

// TestExplainShowsPrunedColumns is the golden test for the planner's
// needed-column analysis: EXPLAIN must print the physical column set a
// scan will decode.
func TestExplainShowsPrunedColumns(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query string
		want  []string // substrings that must appear
		not   []string // substrings that must not appear
	}{
		{
			// Projection needs id only, filter adds name.
			"SELECT id FROM parent WHERE name = 'x'",
			[]string{"cols=[id,name]"},
			nil,
		},
		{
			// Narrow projection, no filter: a single decoded column.
			"SELECT name FROM parent",
			[]string{"cols=[name]"},
			[]string{"col1"},
		},
		{
			// SELECT * needs everything: no cols= annotation at all.
			"SELECT * FROM parent",
			nil,
			[]string{"cols="},
		},
		{
			// Index range scan: key columns come from the B+tree, but the
			// heap fetch decodes only the projected column.
			"SELECT name FROM parent WHERE id > 5 AND id <= 10",
			[]string{"IXSCAN", "cols=[name]"},
			nil,
		},
		{
			// Join keys are needed on both sides even though only p.name is
			// selected; col1 is referenced by neither and is pruned away.
			"SELECT p.name FROM parent p, child c WHERE p.name = c.id",
			[]string{"cols=[name]", "cols=[id]"},
			[]string{"col1"},
		},
		{
			// Aggregation: group key + aggregate argument, nothing else.
			"SELECT name, SUM(col1) FROM parent GROUP BY name",
			[]string{"cols=[name,col1]"},
			nil,
		},
		{
			// ORDER BY a non-projected position is planned over the
			// projected schema, so the scan set is projection ∪ filter.
			"SELECT id FROM parent WHERE col1 > 3 ORDER BY id",
			[]string{"cols=[id,col1]"},
			nil,
		},
	}
	for _, c := range cases {
		ex := explainFor(t, cat, Sophisticated, c.query)
		for _, w := range c.want {
			if !strings.Contains(ex, w) {
				t.Errorf("Explain(%q) missing %q:\n%s", c.query, w, ex)
			}
		}
		for _, nw := range c.not {
			if strings.Contains(ex, nw) {
				t.Errorf("Explain(%q) should not contain %q:\n%s", c.query, nw, ex)
			}
		}
	}
}

// TestPruneKeepsFilterAndJoinColumns checks at the plan level that a
// column referenced only by a filter or join predicate — never by the
// SELECT list — is still in the scan's decode set.
func TestPruneKeepsFilterAndJoinColumns(t *testing.T) {
	cat := testCatalog(t)
	find := func(n Node) *SeqScan {
		var scan *SeqScan
		var walk func(Node)
		walk = func(n Node) {
			if s, ok := n.(*SeqScan); ok && scan == nil {
				scan = s
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(n)
		return scan
	}
	st, err := sql.Parse("SELECT id FROM parent WHERE col1 > 7")
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cat, Sophisticated).PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	scan := find(n)
	if scan == nil {
		t.Fatal("no SeqScan in plan")
	}
	// parent is (id, name, col1): the filter's col1 (ordinal 2) must be
	// decoded alongside the projected id (ordinal 0); name must not.
	if len(scan.Needed) != 2 || scan.Needed[0] != 0 || scan.Needed[1] != 2 {
		t.Errorf("Needed = %v, want [0 2]", scan.Needed)
	}
}

// TestDisablePruning clears every decode set so benchmarks can compare
// against the unpruned baseline.
func TestDisablePruning(t *testing.T) {
	cat := testCatalog(t)
	st, err := sql.Parse("SELECT id FROM parent WHERE name = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cat, Sophisticated).PlanStatement(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(n), "cols=") {
		t.Fatalf("expected pruned plan:\n%s", Explain(n))
	}
	DisablePruning(n)
	if strings.Contains(Explain(n), "cols=") {
		t.Errorf("DisablePruning left a cols= annotation:\n%s", Explain(n))
	}
	// PruneColumns is idempotent and re-derivable after disabling.
	PruneColumns(n)
	if !strings.Contains(Explain(n), "cols=[id,name]") {
		t.Errorf("re-pruning failed:\n%s", Explain(n))
	}
}
