// Package plan turns parsed SQL into physical operator trees: name
// resolution, subquery flattening, predicate pushdown, index selection,
// and join-algorithm/join-order choice. Two optimizer capability levels
// are provided (see Mode) because the paper's §6.2 Test 1 hinges on the
// difference between an optimizer that can unnest the generic chunk
// transformation (DB2) and one that cannot (MySQL).
package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// Scalar is a resolved, executable expression. Row is the input tuple;
// params are the statement's `?` bindings.
type Scalar interface {
	Eval(row []types.Value, params []types.Value) (types.Value, error)
	String() string
}

// ColRef reads column Idx of the input row.
type ColRef struct {
	Idx  int
	Name string // for display
}

// Eval implements Scalar.
func (c *ColRef) Eval(row, _ []types.Value) (types.Value, error) { return row[c.Idx], nil }

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct {
	Val types.Value
}

// Eval implements Scalar.
func (c *Const) Eval(_, _ []types.Value) (types.Value, error) { return c.Val, nil }

func (c *Const) String() string { return c.Val.SQLLiteral() }

// ParamRef reads parameter Idx.
type ParamRef struct {
	Idx int
}

// Eval implements Scalar.
func (p *ParamRef) Eval(_, params []types.Value) (types.Value, error) {
	if p.Idx >= len(params) {
		return types.Null(), fmt.Errorf("plan: missing value for parameter %d", p.Idx+1)
	}
	return params[p.Idx], nil
}

func (p *ParamRef) String() string { return "?" }

// Binary applies a SQL binary operator with three-valued logic.
type Binary struct {
	Op   sql.BinOp
	L, R Scalar
}

// Eval implements Scalar.
func (b *Binary) Eval(row, params []types.Value) (types.Value, error) {
	switch b.Op {
	case sql.OpAnd, sql.OpOr:
		return b.evalLogic(row, params)
	}
	l, err := b.L.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	r, err := b.R.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	switch b.Op {
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		c, err := types.Compare(l, r)
		if err != nil {
			return types.Null(), err
		}
		var out bool
		switch b.Op {
		case sql.OpEq:
			out = c == 0
		case sql.OpNe:
			out = c != 0
		case sql.OpLt:
			out = c < 0
		case sql.OpLe:
			out = c <= 0
		case sql.OpGt:
			out = c > 0
		case sql.OpGe:
			out = c >= 0
		}
		return types.NewBool(out), nil
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv:
		return evalArith(b.Op, l, r)
	}
	return types.Null(), fmt.Errorf("plan: bad binary op %v", b.Op)
}

func (b *Binary) evalLogic(row, params []types.Value) (types.Value, error) {
	l, err := b.L.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	// Short-circuit where three-valued logic allows it.
	if !l.IsNull() && l.Kind == types.KindBool {
		if b.Op == sql.OpAnd && !l.Bool() {
			return types.NewBool(false), nil
		}
		if b.Op == sql.OpOr && l.Bool() {
			return types.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	lv, lok := boolOrNull(l)
	rv, rok := boolOrNull(r)
	if b.Op == sql.OpAnd {
		switch {
		case lok && !lv, rok && !rv:
			return types.NewBool(false), nil
		case !lok || !rok:
			return types.Null(), nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case lok && lv, rok && rv:
		return types.NewBool(true), nil
	case !lok || !rok:
		return types.Null(), nil
	default:
		return types.NewBool(false), nil
	}
}

func boolOrNull(v types.Value) (val bool, known bool) {
	if v.IsNull() {
		return false, false
	}
	return v.Bool(), true
}

func evalArith(op sql.BinOp, l, r types.Value) (types.Value, error) {
	if l.Kind == types.KindInt && r.Kind == types.KindInt {
		switch op {
		case sql.OpAdd:
			return types.NewInt(l.Int + r.Int), nil
		case sql.OpSub:
			return types.NewInt(l.Int - r.Int), nil
		case sql.OpMul:
			return types.NewInt(l.Int * r.Int), nil
		case sql.OpDiv:
			if r.Int == 0 {
				return types.Null(), fmt.Errorf("plan: division by zero")
			}
			return types.NewInt(l.Int / r.Int), nil
		}
	}
	lf, err := types.Cast(l, types.KindFloat)
	if err != nil {
		return types.Null(), fmt.Errorf("plan: arithmetic on %s", l.Kind)
	}
	rf, err := types.Cast(r, types.KindFloat)
	if err != nil {
		return types.Null(), fmt.Errorf("plan: arithmetic on %s", r.Kind)
	}
	switch op {
	case sql.OpAdd:
		return types.NewFloat(lf.Float + rf.Float), nil
	case sql.OpSub:
		return types.NewFloat(lf.Float - rf.Float), nil
	case sql.OpMul:
		return types.NewFloat(lf.Float * rf.Float), nil
	case sql.OpDiv:
		if rf.Float == 0 {
			return types.Null(), fmt.Errorf("plan: division by zero")
		}
		return types.NewFloat(lf.Float / rf.Float), nil
	}
	return types.Null(), fmt.Errorf("plan: bad arith op %v", op)
}

func (b *Binary) String() string {
	return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
}

// Not is logical negation.
type Not struct {
	X Scalar
}

// Eval implements Scalar.
func (n *Not) Eval(row, params []types.Value) (types.Value, error) {
	v, err := n.X.Eval(row, params)
	if err != nil || v.IsNull() {
		return types.Null(), err
	}
	return types.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.X) }

// Neg is arithmetic negation.
type Neg struct {
	X Scalar
}

// Eval implements Scalar.
func (n *Neg) Eval(row, params []types.Value) (types.Value, error) {
	v, err := n.X.Eval(row, params)
	if err != nil || v.IsNull() {
		return types.Null(), err
	}
	switch v.Kind {
	case types.KindInt:
		return types.NewInt(-v.Int), nil
	case types.KindFloat:
		return types.NewFloat(-v.Float), nil
	}
	return types.Null(), fmt.Errorf("plan: cannot negate %s", v.Kind)
}

func (n *Neg) String() string { return fmt.Sprintf("-(%s)", n.X) }

// IsNull tests for SQL NULL.
type IsNull struct {
	X   Scalar
	Not bool
}

// Eval implements Scalar.
func (e *IsNull) Eval(row, params []types.Value) (types.Value, error) {
	v, err := e.X.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	return types.NewBool(v.IsNull() != e.Not), nil
}

func (e *IsNull) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

// InList is `x IN (v1, v2, ...)`.
type InList struct {
	X    Scalar
	List []Scalar
	Not  bool
}

// Eval implements Scalar.
func (e *InList) Eval(row, params []types.Value) (types.Value, error) {
	x, err := e.X.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if x.IsNull() {
		return types.Null(), nil
	}
	sawNull := false
	for _, item := range e.List {
		v, err := item.Eval(row, params)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if c, err := types.Compare(x, v); err == nil && c == 0 {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.Null(), nil
	}
	return types.NewBool(e.Not), nil
}

func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	op := " IN ("
	if e.Not {
		op = " NOT IN ("
	}
	return e.X.String() + op + strings.Join(items, ", ") + ")"
}

// InSubquery is `x IN (SELECT ...)` for uncorrelated subqueries. The
// executor materializes the subquery into Set on first use (via the
// SetFn callback installed by the engine).
type InSubquery struct {
	X    Scalar
	Plan Node // single-column subquery plan
	Not  bool

	// Materialize runs Plan and returns its rows; installed by the
	// executor at Open time.
	Materialize func(Node, []types.Value) ([][]types.Value, error)
	set         map[uint64][]types.Value
	sawNull     bool
}

// Eval implements Scalar.
func (e *InSubquery) Eval(row, params []types.Value) (types.Value, error) {
	if e.set == nil {
		if e.Materialize == nil {
			return types.Null(), fmt.Errorf("plan: IN subquery not bound to an executor")
		}
		rows, err := e.Materialize(e.Plan, params)
		if err != nil {
			return types.Null(), err
		}
		e.set = make(map[uint64][]types.Value, len(rows))
		for _, r := range rows {
			if r[0].IsNull() {
				e.sawNull = true
				continue
			}
			h := types.Hash(r[0])
			e.set[h] = append(e.set[h], r[0])
		}
	}
	x, err := e.X.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if x.IsNull() {
		return types.Null(), nil
	}
	for _, v := range e.set[types.Hash(x)] {
		if types.Equal(x, v) {
			return types.NewBool(!e.Not), nil
		}
	}
	if e.sawNull {
		return types.Null(), nil
	}
	return types.NewBool(e.Not), nil
}

// Reset clears the materialized set (a fresh execution must re-run the
// subquery, e.g. with new parameters).
func (e *InSubquery) Reset() { e.set = nil; e.sawNull = false }

func (e *InSubquery) String() string {
	op := " IN (<subquery>)"
	if e.Not {
		op = " NOT IN (<subquery>)"
	}
	return e.X.String() + op
}

// Like is SQL LIKE with % and _ wildcards.
type Like struct {
	X, Pattern Scalar
	Not        bool
}

// Eval implements Scalar.
func (e *Like) Eval(row, params []types.Value) (types.Value, error) {
	x, err := e.X.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	p, err := e.Pattern.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	if x.IsNull() || p.IsNull() {
		return types.Null(), nil
	}
	m := likeMatch(x.String(), p.String())
	return types.NewBool(m != e.Not), nil
}

func (e *Like) String() string {
	op := " LIKE "
	if e.Not {
		op = " NOT LIKE "
	}
	return e.X.String() + op + e.Pattern.String()
}

// likeMatch implements %/_ globbing with an iterative two-pointer
// algorithm (greedy with backtracking on %).
func likeMatch(s, pat string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Cast converts its operand.
type Cast struct {
	X    Scalar
	Type types.ColumnType
}

// Eval implements Scalar.
func (c *Cast) Eval(row, params []types.Value) (types.Value, error) {
	v, err := c.X.Eval(row, params)
	if err != nil {
		return types.Null(), err
	}
	return types.Cast(v, c.Type.Kind)
}

func (c *Cast) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", c.X, c.Type)
}

// IsTrue reports whether v is boolean TRUE (filters keep such rows).
func IsTrue(v types.Value) bool {
	return v.Kind == types.KindBool && v.Bool()
}
