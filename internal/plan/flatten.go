package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// flattenSubqueries rewrites FROM-clause derived tables into the outer
// query when they are simple select-project-join blocks. This is the
// unnesting DB2's optimizer performs (Fegaras & Maier rule N8, cited in
// §6.1 of the paper); the naive planner skips this pass and pays the
// materialization penalty instead, matching the MySQL behaviour the
// paper observed in Test 1.
//
// A derived table is flattenable when it has no aggregation, grouping,
// HAVING, DISTINCT, ORDER BY, LIMIT, or star projections. Any WHERE
// clause merges conjunctively into the outer WHERE.
func (p *Planner) flattenSubqueries(s *sql.SelectStmt) (*sql.SelectStmt, error) {
	out := *s
	out.From = append([]sql.TableRef(nil), s.From...)
	// A bare `*` would change meaning once a derived table's FROM
	// entries are spliced in (it would expand to the inner physical
	// columns); rewrite it to per-entry qualified stars first.
	bareStar := false
	for _, it := range out.Items {
		if it.Star && it.StarQualifier == "" {
			bareStar = true
		}
	}
	if bareStar {
		var items []sql.SelectItem
		for _, it := range out.Items {
			if !it.Star || it.StarQualifier != "" {
				items = append(items, it)
				continue
			}
			for _, tr := range out.From {
				switch tr := tr.(type) {
				case *sql.NamedTable:
					q := tr.Alias
					if q == "" {
						q = tr.Name
					}
					items = append(items, sql.SelectItem{Star: true, StarQualifier: q})
				case *sql.SubqueryTable:
					items = append(items, sql.SelectItem{Star: true, StarQualifier: tr.Alias})
				default:
					// Join trees keep the bare star; their derived
					// tables are left unflattened below.
					items = append(items, it)
				}
			}
		}
		out.Items = items
		for _, it := range out.Items {
			if it.Star && it.StarQualifier == "" {
				// A join tree keeps the bare star; leave the query
				// unflattened rather than change its meaning.
				return &out, nil
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i, tr := range out.From {
			sub, ok := tr.(*sql.SubqueryTable)
			if !ok {
				continue
			}
			inner, err := p.flattenSubqueries(sub.Select)
			if err != nil {
				return nil, err
			}
			if !flattenable(inner) {
				out.From[i] = &sql.SubqueryTable{Select: inner, Alias: sub.Alias}
				continue
			}
			if err := p.spliceSubquery(&out, i, sub.Alias, inner); err != nil {
				return nil, err
			}
			changed = true
			break
		}
	}
	return &out, nil
}

func flattenable(s *sql.SelectStmt) bool {
	if s.Distinct || len(s.GroupBy) > 0 || s.Having != nil || len(s.OrderBy) > 0 || s.Limit != nil {
		return false
	}
	for _, it := range s.Items {
		if it.Star || containsAgg(it.Expr) {
			return false
		}
	}
	for _, f := range s.From {
		if _, isJoin := f.(*sql.JoinTable); isJoin {
			return false // keep explicit join trees intact
		}
	}
	return true
}

// spliceSubquery merges out.From[idx] (a flattenable subquery with the
// given alias) into out.
func (p *Planner) spliceSubquery(out *sql.SelectStmt, idx int, alias string, inner *sql.SelectStmt) error {
	// Rename inner aliases that collide with outer ones.
	used := map[string]bool{}
	for i, tr := range out.From {
		if i == idx {
			continue
		}
		for _, a := range refAliases(tr) {
			used[strings.ToLower(a)] = true
		}
	}
	renames := map[string]string{}
	innerFrom := make([]sql.TableRef, len(inner.From))
	for i, tr := range inner.From {
		nt := tr.(*sql.NamedTable)
		name := nt.Alias
		if name == "" {
			name = nt.Name
		}
		newName := name
		for n := 1; used[strings.ToLower(newName)]; n++ {
			newName = fmt.Sprintf("%s_f%d", name, n)
		}
		used[strings.ToLower(newName)] = true
		if !strings.EqualFold(newName, name) {
			renames[strings.ToLower(name)] = newName
		}
		innerFrom[i] = &sql.NamedTable{Name: nt.Name, Alias: newName}
	}
	// renameExpr fixes inner references for life outside the subquery:
	// renamed aliases are applied, and unqualified references pick up
	// their providing table's alias so they cannot become ambiguous
	// against the outer FROM entries after splicing.
	renameExpr := func(e sql.Expr) sql.Expr {
		return rewriteExpr(e, func(c *sql.ColumnRef) sql.Expr {
			if c.Table != "" {
				if nn, ok := renames[strings.ToLower(c.Table)]; ok {
					return &sql.ColumnRef{Table: nn, Name: c.Name}
				}
				return c
			}
			var owner *sql.NamedTable
			for _, tr := range innerFrom {
				nt := tr.(*sql.NamedTable)
				if refProvides(p, nt, c.Name) {
					if owner != nil {
						return c // ambiguous inside too; leave for the resolver
					}
					owner = nt
				}
			}
			if owner == nil {
				return c
			}
			qual := owner.Alias
			if qual == "" {
				qual = owner.Name
			}
			return &sql.ColumnRef{Table: qual, Name: c.Name}
		})
	}

	// Substitution map: name exported by the subquery -> defining expr.
	subst := map[string]sql.Expr{}
	for _, it := range inner.Items {
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		subst[strings.ToLower(name)] = renameExpr(it.Expr)
	}

	// Names the other outer FROM entries could provide, to decide
	// whether an unqualified reference belongs to the subquery.
	otherProvides := func(name string) bool {
		for i, tr := range out.From {
			if i == idx {
				continue
			}
			if refProvides(p, tr, name) {
				return true
			}
		}
		return false
	}

	replace := func(e sql.Expr) sql.Expr {
		if e == nil {
			return nil
		}
		return rewriteExpr(e, func(c *sql.ColumnRef) sql.Expr {
			key := strings.ToLower(c.Name)
			def, ok := subst[key]
			if !ok {
				return c
			}
			if strings.EqualFold(c.Table, alias) {
				return def
			}
			if c.Table == "" && !otherProvides(c.Name) {
				return def
			}
			return c
		})
	}

	for i := range out.Items {
		if !out.Items[i].Star {
			// Keep the user-visible column name when substitution
			// replaces a plain reference with the defining expression.
			if out.Items[i].Alias == "" {
				if cr, ok := out.Items[i].Expr.(*sql.ColumnRef); ok {
					out.Items[i].Alias = cr.Name
				}
			}
			out.Items[i].Expr = replace(out.Items[i].Expr)
		} else if strings.EqualFold(out.Items[i].StarQualifier, alias) {
			// alias.* expands to the subquery's item list.
			expanded := make([]sql.SelectItem, 0, len(inner.Items))
			for _, it := range inner.Items {
				name := it.Alias
				if name == "" {
					if cr, ok := it.Expr.(*sql.ColumnRef); ok {
						name = cr.Name
					}
				}
				expanded = append(expanded, sql.SelectItem{Expr: renameExpr(it.Expr), Alias: name})
			}
			out.Items = append(out.Items[:i], append(expanded, out.Items[i+1:]...)...)
		}
	}
	out.Where = replace(out.Where)
	for i := range out.GroupBy {
		out.GroupBy[i] = replace(out.GroupBy[i])
	}
	out.Having = replace(out.Having)
	for i := range out.OrderBy {
		out.OrderBy[i].Expr = replace(out.OrderBy[i].Expr)
	}

	// Splice FROM and merge WHERE.
	from := append([]sql.TableRef{}, out.From[:idx]...)
	from = append(from, innerFrom...)
	from = append(from, out.From[idx+1:]...)
	out.From = from
	if w := renameExpr(inner.Where); w != nil {
		if out.Where == nil {
			out.Where = w
		} else {
			out.Where = &sql.BinaryExpr{Op: sql.OpAnd, L: out.Where, R: w}
		}
	}
	return nil
}

// refAliases lists the aliases a FROM entry binds.
func refAliases(tr sql.TableRef) []string {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		if tr.Alias != "" {
			return []string{tr.Alias}
		}
		return []string{tr.Name}
	case *sql.SubqueryTable:
		return []string{tr.Alias}
	case *sql.JoinTable:
		return append(refAliases(tr.Left), refAliases(tr.Right)...)
	}
	return nil
}

// refProvides reports whether the FROM entry can supply a column of the
// given name (consulting the catalog for base tables).
func refProvides(p *Planner, tr sql.TableRef, name string) bool {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		t, err := p.Cat.Table(tr.Name)
		if err != nil {
			return false
		}
		return t.ColIndex(name) >= 0
	case *sql.SubqueryTable:
		for _, it := range tr.Select.Items {
			n := it.Alias
			if n == "" {
				if cr, ok := it.Expr.(*sql.ColumnRef); ok {
					n = cr.Name
				}
			}
			if strings.EqualFold(n, name) {
				return true
			}
		}
	case *sql.JoinTable:
		return refProvides(p, tr.Left, name) || refProvides(p, tr.Right, name)
	}
	return false
}

// rewriteExpr rebuilds an expression applying fn to every ColumnRef.
func rewriteExpr(e sql.Expr, fn func(*sql.ColumnRef) sql.Expr) sql.Expr {
	switch e := e.(type) {
	case *sql.ColumnRef:
		return fn(e)
	case *sql.Literal, *sql.Param:
		return e
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: e.Op, L: rewriteExpr(e.L, fn), R: rewriteExpr(e.R, fn)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: e.Op, X: rewriteExpr(e.X, fn)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{X: rewriteExpr(e.X, fn), Not: e.Not}
	case *sql.LikeExpr:
		return &sql.LikeExpr{X: rewriteExpr(e.X, fn), Pattern: rewriteExpr(e.Pattern, fn), Not: e.Not}
	case *sql.CastExpr:
		return &sql.CastExpr{X: rewriteExpr(e.X, fn), Type: e.Type}
	case *sql.FuncExpr:
		args := make([]sql.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = rewriteExpr(a, fn)
		}
		return &sql.FuncExpr{Name: e.Name, Star: e.Star, Args: args}
	case *sql.InExpr:
		out := &sql.InExpr{X: rewriteExpr(e.X, fn), Not: e.Not, Subquery: e.Subquery}
		for _, i := range e.List {
			out.List = append(out.List, rewriteExpr(i, fn))
		}
		return out
	}
	return e
}
