package plan

import (
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

// TestExplainRendersEveryOperator plans queries that exercise each
// physical operator and checks the EXPLAIN output names them all.
func TestExplainRendersEveryOperator(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query string
		want  []string
	}{
		{"SELECT id FROM parent WHERE id = 1", []string{"IXSCAN", "parent_pk"}},
		{"SELECT id FROM parent WHERE name = 'x'", []string{"TBSCAN", "filter="}},
		{"SELECT p.id FROM parent p, child c WHERE p.id = c.parent AND p.id = 1",
			[]string{"NLJOIN", "inner=child"}},
		{"SELECT p.id FROM parent p, child c WHERE p.name = c.id", []string{"HSJOIN"}},
		{"SELECT p.id FROM parent p, child c WHERE p.col1 > c.col1", []string{"NLJOIN*", "cross"}[:1]},
		{"SELECT name, COUNT(*) FROM parent GROUP BY name HAVING COUNT(*) > 1",
			[]string{"GRPBY", "FILTER"}},
		{"SELECT DISTINCT name FROM parent ORDER BY name LIMIT 3",
			[]string{"UNIQUE", "SORT", "LIMIT", "PROJECT"}},
		{"SELECT 1", []string{"VALUES"}},
		{"UPDATE parent SET name = 'x' WHERE id = 1", []string{"UPDATE"}},
		{"DELETE FROM child WHERE parent = 2", []string{"DELETE"}},
		{"INSERT INTO parent (id) VALUES (99)", []string{"INSERT", "1 rows"}},
	}
	for _, c := range cases {
		ex := explainFor(t, cat, Sophisticated, c.query)
		for _, w := range c.want {
			if !strings.Contains(ex, w) {
				t.Errorf("Explain(%q) missing %q:\n%s", c.query, w, ex)
			}
		}
	}
	// Naive materialization label.
	ex := explainFor(t, cat, Naive, "SELECT a FROM (SELECT id AS a FROM parent) AS s")
	if !strings.Contains(ex, "TEMP") || !strings.Contains(ex, "materialized") {
		t.Errorf("naive explain:\n%s", ex)
	}
	// Left join label.
	ex = explainFor(t, cat, Sophisticated, "SELECT p.id FROM parent p LEFT JOIN child c ON c.parent = p.id AND c.col1 > p.col1")
	if !strings.Contains(ex, "LEFT") {
		t.Errorf("left join explain:\n%s", ex)
	}
}

func TestAccessPathString(t *testing.T) {
	var nilPath *AccessPath
	if nilPath.String() != "full scan" {
		t.Errorf("nil path: %s", nilPath.String())
	}
	cat := testCatalog(t)
	ex := explainFor(t, cat, Sophisticated, "SELECT id FROM parent WHERE id > 2 AND id <= 9")
	if !strings.Contains(ex, ">") || !strings.Contains(ex, "<=") {
		t.Errorf("range path rendering:\n%s", ex)
	}
}

func TestFlattenQualifiedStar(t *testing.T) {
	cat := testCatalog(t)
	// Bare star over a derived table: flattening must preserve the
	// visible column set (id, nm), not expose physical columns.
	q := "SELECT * FROM (SELECT id, name AS nm FROM parent WHERE id < 5) AS sub"
	st, _ := sql.Parse(q)
	p := New(cat, Sophisticated)
	n, err := p.PlanSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	schema := n.Schema()
	if len(schema) != 2 || !strings.EqualFold(schema[0].Name, "id") || !strings.EqualFold(schema[1].Name, "nm") {
		t.Errorf("flattened star schema: %+v", schema)
	}
	// Qualified star with other tables present.
	q = "SELECT sub.*, c.id FROM (SELECT id AS pid FROM parent) AS sub, child c WHERE c.parent = sub.pid"
	st, _ = sql.Parse(q)
	n, err = p.PlanSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	schema = n.Schema()
	if len(schema) != 2 || !strings.EqualFold(schema[0].Name, "pid") {
		t.Errorf("qualified star schema: %+v", schema)
	}
}

func TestFlattenKeepsComplexExprSubstitution(t *testing.T) {
	cat := testCatalog(t)
	// The derived table computes an expression; outer references to it
	// must be replaced by the defining expression everywhere.
	q := "SELECT twice FROM (SELECT col1 + col1 AS twice, id FROM parent) AS s WHERE twice > 0 AND id < 10 ORDER BY twice"
	ex := explainFor(t, cat, Sophisticated, q)
	if strings.Contains(ex, "TEMP") || strings.Contains(ex, "SUBQ") {
		t.Errorf("should flatten:\n%s", ex)
	}
	if !strings.Contains(ex, "col1 + ") {
		t.Errorf("substituted expression missing:\n%s", ex)
	}
}

func TestFlattenNestedTwoLevels(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT a FROM (SELECT b AS a FROM (SELECT id AS b FROM parent WHERE id = 3) AS inner1) AS outer1"
	st, _ := sql.Parse(q)
	p := New(cat, Sophisticated)
	n, err := p.PlanSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(n)
	if strings.Contains(ex, "SUBQ") {
		t.Errorf("two-level flattening failed:\n%s", ex)
	}
	if !strings.Contains(ex, "IXSCAN") {
		t.Errorf("innermost predicate should reach the index:\n%s", ex)
	}
}

func TestScalarStrings(t *testing.T) {
	exprs := []struct {
		s    Scalar
		want string
	}{
		{&ColRef{Idx: 3}, "$3"},
		{&ColRef{Idx: 1, Name: "t.a"}, "t.a"},
		{&Const{Val: types.NewString("x")}, "'x'"},
		{&ParamRef{Idx: 0}, "?"},
		{&Not{X: &Const{Val: types.NewBool(true)}}, "NOT (TRUE)"},
		{&Neg{X: &ColRef{Name: "a"}}, "-(a)"},
		{&IsNull{X: &ColRef{Name: "a"}}, "a IS NULL"},
		{&IsNull{X: &ColRef{Name: "a"}, Not: true}, "a IS NOT NULL"},
		{&InList{X: &ColRef{Name: "a"}, List: []Scalar{&Const{Val: types.NewInt(1)}}}, "a IN (1)"},
		{&InList{X: &ColRef{Name: "a"}, Not: true, List: []Scalar{&Const{Val: types.NewInt(1)}}}, "a NOT IN (1)"},
		{&InSubquery{X: &ColRef{Name: "a"}}, "a IN (<subquery>)"},
		{&Like{X: &ColRef{Name: "a"}, Pattern: &Const{Val: types.NewString("x%")}}, "a LIKE 'x%'"},
		{&Like{X: &ColRef{Name: "a"}, Pattern: &Const{Val: types.NewString("x%")}, Not: true}, "a NOT LIKE 'x%'"},
		{&Cast{X: &ColRef{Name: "a"}, Type: types.IntType}, "CAST(a AS INTEGER)"},
	}
	for _, e := range exprs {
		if got := e.s.String(); got != e.want {
			t.Errorf("String() = %q, want %q", got, e.want)
		}
	}
}

func TestCastEval(t *testing.T) {
	c := &Cast{X: &Const{Val: types.NewString("42")}, Type: types.IntType}
	v, err := c.Eval(nil, nil)
	if err != nil || v.Int != 42 {
		t.Errorf("cast eval: %v %v", v, err)
	}
	bad := &Cast{X: &Const{Val: types.NewString("nope")}, Type: types.IntType}
	if _, err := bad.Eval(nil, nil); err == nil {
		t.Error("bad cast should error")
	}
}

func TestParamRefMissing(t *testing.T) {
	p := &ParamRef{Idx: 2}
	if _, err := p.Eval(nil, []types.Value{types.NewInt(1)}); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestNaiveIndexFallbackOrder(t *testing.T) {
	cat := testCatalog(t)
	// Naive mode: first candidate 'name' has no index; fallback finds
	// the id candidate in textual order.
	ex := explainFor(t, cat, Naive, "SELECT id FROM parent WHERE name = 'x' AND id = 3")
	if !strings.Contains(ex, "IXSCAN") {
		t.Errorf("naive fallback should still use the pk:\n%s", ex)
	}
}

func TestAggregateErrorPaths(t *testing.T) {
	cat := testCatalog(t)
	p := New(cat, Sophisticated)
	bad := []string{
		"SELECT SUM(*) FROM parent",
		"SELECT SUM(id, col1) FROM parent",
		"SELECT name FROM parent GROUP BY id",
		"SELECT COUNT(*) FROM parent HAVING name = 'x'",
	}
	for _, q := range bad {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := p.PlanStatement(st); err == nil {
			t.Errorf("plan(%q) should fail", q)
		}
	}
}

func TestOrderByQualifiedGroupKey(t *testing.T) {
	cat := testCatalog(t)
	// ORDER BY an unqualified name matching a qualified group key.
	q := "SELECT p.name, COUNT(*) FROM parent p GROUP BY p.name ORDER BY name"
	ex := explainFor(t, cat, Sophisticated, q)
	if !strings.Contains(ex, "SORT") {
		t.Errorf("plan:\n%s", ex)
	}
}
