package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
)

// Mode selects the optimizer capability level.
type Mode uint8

const (
	// Sophisticated models DB2 in the paper's Test 1: it flattens
	// derived tables, reorders comma joins by selectivity, and picks
	// the best matching index per table.
	Sophisticated Mode = iota
	// Naive models MySQL in the paper's Test 1: derived tables are
	// materialized before outer predicates apply, join order follows
	// the FROM clause, and index choice takes the first usable match
	// in textual predicate order.
	Naive
)

// Planner compiles parsed statements into physical plans.
type Planner struct {
	Cat  *catalog.Catalog
	Mode Mode
	// AsOf, when AsOfSet, plans under the schema version each table had
	// at that commit timestamp instead of the newest one: a snapshot
	// transaction that began before an online ALTER resolves its column
	// prefix through the table's schema chain. Because the physical
	// column space only grows and slots never move, the resulting plan
	// addresses current rows with plain physical ordinals. (A separate
	// flag because 0 is a legitimate snapshot timestamp: the publish
	// clock only advances when versioned commits or ALTERs stamp it.)
	AsOf    uint64
	AsOfSet bool
}

// physCols returns the physical column slots visible to the planner's
// schema epoch (the newest schema when no as-of snapshot is set).
func (p *Planner) physCols(t *catalog.Table) []catalog.Column {
	if p.AsOfSet {
		return t.Schemas.At(p.AsOf).Cols
	}
	return t.Columns
}

// colIndex resolves a column name within the planner's schema epoch;
// dropped slots never match.
func (p *Planner) colIndex(t *catalog.Table, name string) int {
	for i, c := range p.physCols(t) {
		if !c.Dropped && strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// tableSchema builds a table's ColInfo list under the planner's schema
// epoch.
func (p *Planner) tableSchema(t *catalog.Table, alias string) []ColInfo {
	return colInfos(p.physCols(t), t.Name, alias)
}

// New creates a planner over cat.
func New(cat *catalog.Catalog, mode Mode) *Planner {
	return &Planner{Cat: cat, Mode: mode}
}

// PlanStatement plans SELECT, INSERT, UPDATE, and DELETE. DDL is
// executed directly by the engine, not planned.
func (p *Planner) PlanStatement(st sql.Statement) (Node, error) {
	switch st := st.(type) {
	case *sql.SelectStmt:
		return p.PlanSelect(st)
	case *sql.InsertStmt:
		return p.planInsert(st)
	case *sql.UpdateStmt:
		return p.planUpdate(st)
	case *sql.DeleteStmt:
		return p.planDelete(st)
	}
	return nil, fmt.Errorf("plan: statement %T is not plannable", st)
}

// --- FROM planning -----------------------------------------------------------

// source is one FROM entry during join planning.
type source struct {
	table *catalog.Table // non-nil for base tables
	alias string
	node  Node // pre-planned node for subqueries / join trees
	cols  []ColInfo
	local []sql.Expr // single-source conjuncts from WHERE
	// join holds the AST of an explicit join tree so buildSource can
	// replan it with the WHERE conjuncts pushed into its leaves.
	join *sql.JoinTable
}

func (p *Planner) makeSource(tr sql.TableRef) (*source, error) {
	switch tr := tr.(type) {
	case *sql.NamedTable:
		t, err := p.Cat.Table(tr.Name)
		if err != nil {
			return nil, err
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		return &source{table: t, alias: alias, cols: p.tableSchema(t, alias)}, nil
	case *sql.SubqueryTable:
		sub, err := p.PlanSelect(tr.Select)
		if err != nil {
			return nil, err
		}
		cols := make([]ColInfo, len(sub.Schema()))
		for i, c := range sub.Schema() {
			cols[i] = ColInfo{Qual: tr.Alias, Name: c.Name, Type: c.Type}
		}
		var node Node = &renameNode{child: sub, cols: cols}
		if p.Mode == Naive {
			node = &Materialize{Sub: node, Cols: cols}
		}
		return &source{alias: tr.Alias, node: node, cols: cols}, nil
	case *sql.JoinTable:
		// Plan once to learn the schema; buildSource replans with the
		// WHERE conjuncts pushed into the tree's leaves.
		n, err := p.planJoinTree(tr, nil)
		if err != nil {
			return nil, err
		}
		return &source{node: n, cols: n.Schema(), join: tr}, nil
	}
	return nil, fmt.Errorf("plan: unsupported FROM entry %T", tr)
}

// renameNode re-qualifies a child's schema under a derived-table alias.
type renameNode struct {
	child Node
	cols  []ColInfo
}

// Schema implements Node.
func (r *renameNode) Schema() []ColInfo { return r.cols }

// Children implements Node.
func (r *renameNode) Children() []Node { return []Node{r.child} }

// Label implements Node.
func (r *renameNode) Label() string { return "SUBQ" }

// Detail implements Node.
func (r *renameNode) Detail() string {
	if len(r.cols) > 0 {
		return r.cols[0].Qual
	}
	return ""
}

// Child exposes the wrapped node for the executor.
func (r *renameNode) Child() Node { return r.child }

// sourceProvides reports whether the source exposes a column name.
func sourceProvides(s *source, name string) bool {
	for _, c := range s.cols {
		if strings.EqualFold(c.Name, name) {
			return true
		}
	}
	return false
}

// sourcesOf returns the indexes of the sources a conjunct references.
// Unqualified names are attributed to the unique providing source.
func sourcesOf(conj sql.Expr, srcs []*source) (map[int]bool, error) {
	var refs []*sql.ColumnRef
	collectColumnRefs(conj, &refs)
	out := map[int]bool{}
	for _, r := range refs {
		matched := -1
		for i, s := range srcs {
			if r.Table != "" {
				if matchAlias(s, r.Table) && sourceProvides(s, r.Name) {
					if matched >= 0 {
						return nil, fmt.Errorf("plan: ambiguous reference %s", r)
					}
					matched = i
				}
			} else if sourceProvides(s, r.Name) {
				if matched >= 0 {
					return nil, fmt.Errorf("plan: ambiguous column %s", r.Name)
				}
				matched = i
			}
		}
		if matched < 0 {
			return nil, fmt.Errorf("plan: unknown column %s", r)
		}
		out[matched] = true
	}
	return out, nil
}

// matchAlias reports whether qual names this source. Join-tree sources
// answer for any alias inside the tree.
func matchAlias(s *source, qual string) bool {
	if s.alias != "" {
		return strings.EqualFold(s.alias, qual)
	}
	for _, c := range s.cols {
		if strings.EqualFold(c.Qual, qual) {
			return true
		}
	}
	return false
}

type joinConjunct struct {
	expr sql.Expr
	srcs map[int]bool
	used bool
}

// planFrom builds the join tree for a SELECT, pushing single-table
// predicates into scans and choosing join order and algorithms.
func (p *Planner) planFrom(s *sql.SelectStmt) (Node, error) {
	if len(s.From) == 0 {
		return &Values{Rows: [][]Scalar{{}}}, nil
	}
	srcs := make([]*source, len(s.From))
	for i, tr := range s.From {
		src, err := p.makeSource(tr)
		if err != nil {
			return nil, err
		}
		srcs[i] = src
	}

	var joinConjs []*joinConjunct
	var constConjs []sql.Expr
	if s.Where != nil {
		var conjs []sql.Expr
		splitConjuncts(s.Where, &conjs)
		for _, c := range conjs {
			set, err := sourcesOf(c, srcs)
			if err != nil {
				return nil, err
			}
			switch len(set) {
			case 0:
				constConjs = append(constConjs, c)
			case 1:
				for i := range set {
					srcs[i].local = append(srcs[i].local, c)
				}
			default:
				joinConjs = append(joinConjs, &joinConjunct{expr: c, srcs: set})
			}
		}
	}

	order := p.joinOrder(srcs, joinConjs)

	cur, err := p.buildSource(srcs[order[0]])
	if err != nil {
		return nil, err
	}
	placed := map[int]bool{order[0]: true}
	for _, next := range order[1:] {
		// Conjuncts now fully covered by placed ∪ {next}.
		var conds []sql.Expr
		for _, jc := range joinConjs {
			if jc.used || !jc.srcs[next] {
				continue
			}
			covered := true
			for si := range jc.srcs {
				if si != next && !placed[si] {
					covered = false
					break
				}
			}
			if covered {
				conds = append(conds, jc.expr)
				jc.used = true
			}
		}
		cur, err = p.joinTo(cur, srcs[next], conds, sql.InnerJoin)
		if err != nil {
			return nil, err
		}
		placed[next] = true
	}

	// Leftover conjuncts (shouldn't happen, but be safe) and constant
	// conjuncts become filters on top.
	var leftover []sql.Expr
	for _, jc := range joinConjs {
		if !jc.used {
			leftover = append(leftover, jc.expr)
		}
	}
	leftover = append(leftover, constConjs...)
	if len(leftover) > 0 {
		sc := &scope{cols: cur.Schema()}
		cond, err := p.resolveExprList(leftover, sc)
		if err != nil {
			return nil, err
		}
		cur = &Filter{Child: cur, Cond: cond}
	}
	return cur, nil
}

func (p *Planner) resolveExprList(conjs []sql.Expr, sc *scope) (Scalar, error) {
	out := make([]Scalar, 0, len(conjs))
	for _, c := range conjs {
		s, err := p.resolveExpr(c, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return andScalars(out), nil
}

// joinOrder decides the order sources are joined in. Naive keeps FROM
// order; Sophisticated starts from the most selective source and then
// follows join edges greedily.
func (p *Planner) joinOrder(srcs []*source, joinConjs []*joinConjunct) []int {
	n := len(srcs)
	order := make([]int, 0, n)
	if p.Mode == Naive || n == 1 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	score := make([]int, n)
	for i, s := range srcs {
		score[i] = p.scoreSource(s)
	}
	best := 0
	for i := 1; i < n; i++ {
		if score[i] > score[best] {
			best = i
		}
	}
	placed := map[int]bool{best: true}
	order = append(order, best)
	for len(order) < n {
		cand, candScore := -1, -1<<30
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			sc := score[i]
			if connected(i, placed, joinConjs) {
				sc += 1 << 20
			}
			if sc > candScore {
				cand, candScore = i, sc
			}
		}
		placed[cand] = true
		order = append(order, cand)
	}
	return order
}

func connected(i int, placed map[int]bool, joinConjs []*joinConjunct) bool {
	for _, jc := range joinConjs {
		if !jc.srcs[i] {
			continue
		}
		for si := range jc.srcs {
			if placed[si] {
				return true
			}
		}
	}
	return false
}

// scoreSource estimates how selective a source's local predicates are.
func (p *Planner) scoreSource(s *source) int {
	sc := len(s.local)
	if s.table == nil {
		return sc
	}
	cands := p.indexCandidates(s, s.local, nil)
	path, _ := p.chooseIndexPath(s.table, cands)
	if path != nil {
		sc += len(path.eqASTs) * 100
		if path.loAST != nil || path.hiAST != nil {
			sc += 10
		}
		if path.Index.Unique && len(path.eqASTs) == len(path.Index.Cols) {
			sc += 1000
		}
	}
	return sc
}

// candidate is a conjunct usable for index access on a table.
type candidate struct {
	colOrd int
	op     sql.BinOp
	val    sql.Expr // resolvable against outerScope (or constants)
	conj   sql.Expr // original conjunct, for consumption tracking
}

// indexCandidates extracts `tbl.col <op> expr` conjuncts where expr
// does not reference the table itself (so it is computable before the
// scan). outerScope may be nil, meaning only constants qualify.
func (p *Planner) indexCandidates(s *source, conjs []sql.Expr, outerScope *scope) []candidate {
	var out []candidate
	for _, c := range conjs {
		b, ok := c.(*sql.BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		default:
			continue
		}
		try := func(colSide, valSide sql.Expr, op sql.BinOp) bool {
			cr, ok := colSide.(*sql.ColumnRef)
			if !ok {
				return false
			}
			if cr.Table != "" && !strings.EqualFold(cr.Table, s.alias) {
				return false
			}
			ord := s.table.ColIndex(cr.Name)
			if ord < 0 {
				return false
			}
			if !p.resolvableOutside(valSide, s, outerScope) {
				return false
			}
			out = append(out, candidate{colOrd: ord, op: op, val: valSide, conj: c})
			return true
		}
		if try(b.L, b.R, b.Op) {
			continue
		}
		try(b.R, b.L, flipOp(b.Op))
	}
	return out
}

func flipOp(op sql.BinOp) sql.BinOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op
}

// resolvableOutside reports whether e can be evaluated without the
// source s: it references no columns (constant) or only columns the
// outer scope provides.
func (p *Planner) resolvableOutside(e sql.Expr, s *source, outerScope *scope) bool {
	var refs []*sql.ColumnRef
	collectColumnRefs(e, &refs)
	if len(refs) == 0 {
		if in, ok := e.(*sql.InExpr); ok && in.Subquery != nil {
			return false
		}
		return true
	}
	if outerScope == nil {
		return false
	}
	for _, r := range refs {
		if strings.EqualFold(r.Table, s.alias) {
			return false
		}
		if !outerScope.has(r.Table, r.Name) {
			return false
		}
	}
	return true
}

// chooseIndexPath picks an access path from candidates. Sophisticated
// mode maximizes the equality prefix (unique indexes win ties); Naive
// mode returns the first index, in creation order, whose leading column
// matches the textually-first candidate — the paper's Test 1 sensitivity
// to predicate order.
func (p *Planner) chooseIndexPath(t *catalog.Table, cands []candidate) (*AccessPath, []sql.Expr) {
	if len(cands) == 0 || len(t.Indexes) == 0 {
		return nil, nil
	}
	if p.Mode == Naive {
		first := cands[0]
		for _, ix := range t.Indexes {
			if ix.Cols[0] == first.colOrd {
				return buildPath(ix, cands)
			}
		}
		// Fall back: any index led by any candidate, textual order.
		for _, c := range cands {
			for _, ix := range t.Indexes {
				if ix.Cols[0] == c.colOrd {
					return buildPath(ix, cands)
				}
			}
		}
		return nil, nil
	}
	var bestPath *AccessPath
	var bestConsumed []sql.Expr
	bestScore := 0
	for _, ix := range t.Indexes {
		path, consumed := buildPath(ix, cands)
		if path == nil {
			continue
		}
		score := len(path.eqASTs) * 100
		if path.loAST != nil || path.hiAST != nil {
			score += 10
		}
		if ix.Unique && len(path.eqASTs) == len(ix.Cols) {
			score += 1000
		}
		if score > bestScore {
			bestScore, bestPath, bestConsumed = score, path, consumed
		}
	}
	return bestPath, bestConsumed
}

// buildPath matches candidates against one index: equality conjuncts
// cover a leading prefix; the next column may take range bounds.
func buildPath(ix *catalog.Index, cands []candidate) (*AccessPath, []sql.Expr) {
	path := &AccessPath{Index: ix}
	var consumed []sql.Expr
	// astVals holds the AST value exprs in prefix order; caller resolves.
	pos := 0
	for pos < len(ix.Cols) {
		col := ix.Cols[pos]
		found := false
		for _, c := range cands {
			if c.colOrd == col && c.op == sql.OpEq {
				path.eqASTs = append(path.eqASTs, c.val)
				consumed = append(consumed, c.conj)
				found = true
				break
			}
		}
		if !found {
			break
		}
		pos++
	}
	if pos < len(ix.Cols) {
		col := ix.Cols[pos]
		for _, c := range cands {
			if c.colOrd != col {
				continue
			}
			switch c.op {
			case sql.OpGt:
				if path.loAST == nil {
					path.loAST, path.LoInc = c.val, false
					consumed = append(consumed, c.conj)
				}
			case sql.OpGe:
				if path.loAST == nil {
					path.loAST, path.LoInc = c.val, true
					consumed = append(consumed, c.conj)
				}
			case sql.OpLt:
				if path.hiAST == nil {
					path.hiAST, path.HiInc = c.val, false
					consumed = append(consumed, c.conj)
				}
			case sql.OpLe:
				if path.hiAST == nil {
					path.hiAST, path.HiInc = c.val, true
					consumed = append(consumed, c.conj)
				}
			}
		}
	}
	if len(path.eqASTs) == 0 && path.loAST == nil && path.hiAST == nil {
		return nil, nil
	}
	return path, consumed
}

// resolvePath resolves the path's AST value expressions against the
// scope the access-path scalars will be evaluated in.
func (p *Planner) resolvePath(path *AccessPath, sc *scope) error {
	for _, e := range path.eqASTs {
		s, err := p.resolveExpr(e, sc)
		if err != nil {
			return err
		}
		path.EqPrefix = append(path.EqPrefix, s)
	}
	var err error
	if path.loAST != nil {
		if path.Lo, err = p.resolveExpr(path.loAST, sc); err != nil {
			return err
		}
	}
	if path.hiAST != nil {
		if path.Hi, err = p.resolveExpr(path.hiAST, sc); err != nil {
			return err
		}
	}
	return nil
}

// buildSource plans a standalone source with its local predicates.
func (p *Planner) buildSource(s *source) (Node, error) {
	if s.join != nil {
		return p.planJoinTree(s.join, s.local)
	}
	if s.node != nil {
		if len(s.local) == 0 {
			return s.node, nil
		}
		sc := &scope{cols: s.cols}
		cond, err := p.resolveExprList(s.local, sc)
		if err != nil {
			return nil, err
		}
		return &Filter{Child: s.node, Cond: cond}, nil
	}
	sc := &scope{cols: s.cols}
	cands := p.indexCandidates(s, s.local, nil)
	path, consumed := p.chooseIndexPath(s.table, cands)
	if path == nil {
		cond, err := p.resolveExprList(s.local, sc)
		if err != nil {
			return nil, err
		}
		return &SeqScan{Table: s.table, Alias: s.alias, Filter: cond, Cols: s.cols}, nil
	}
	// Constants resolve against the empty scope.
	if err := p.resolvePath(path, &scope{}); err != nil {
		return nil, err
	}
	residual, err := p.resolveExprList(subtract(s.local, consumed), sc)
	if err != nil {
		return nil, err
	}
	return &IndexScan{Table: s.table, Alias: s.alias, Path: *path, Residual: residual, Cols: s.cols}, nil
}

func subtract(all, consumed []sql.Expr) []sql.Expr {
	var out []sql.Expr
	for _, c := range all {
		used := false
		for _, u := range consumed {
			if c == u {
				used = true
				break
			}
		}
		if !used {
			out = append(out, c)
		}
	}
	return out
}

// joinTo joins source s into the running tree cur using conds (the
// conjuncts linking them) plus s's own local predicates.
func (p *Planner) joinTo(cur Node, s *source, conds []sql.Expr, jt sql.JoinType) (Node, error) {
	outerScope := &scope{cols: cur.Schema()}
	combined := &scope{cols: append(append([]ColInfo{}, cur.Schema()...), s.cols...)}

	// Try an index nested-loop join: inner table keys bound by the
	// outer row (or constants).
	if s.table != nil {
		all := append(append([]sql.Expr{}, conds...), s.local...)
		cands := p.indexCandidates(s, all, outerScope)
		path, consumed := p.chooseIndexPath(s.table, cands)
		if path != nil {
			if err := p.resolvePath(path, outerScope); err != nil {
				return nil, err
			}
			residual, err := p.resolveExprList(subtract(all, consumed), combined)
			if err != nil {
				return nil, err
			}
			return &IndexNLJoin{Outer: cur, Inner: s.table, Alias: s.alias,
				Path: *path, Residual: residual, Type: jt, InnerCols: s.cols}, nil
		}
	}

	// Hash join on equi-conjuncts outer-col = inner-col.
	rightNode, err := p.buildRightForJoin(s, jt)
	if err != nil {
		return nil, err
	}
	rightScope := &scope{cols: s.cols}
	var leftKeys, rightKeys []Scalar
	var residualConjs []sql.Expr
	for _, c := range conds {
		b, ok := c.(*sql.BinaryExpr)
		if !ok || b.Op != sql.OpEq {
			residualConjs = append(residualConjs, c)
			continue
		}
		lk, lErr := p.resolveExpr(b.L, outerScope)
		rk, rErr := p.resolveExpr(b.R, rightScope)
		if lErr == nil && rErr == nil {
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			continue
		}
		lk, lErr = p.resolveExpr(b.R, outerScope)
		rk, rErr = p.resolveExpr(b.L, rightScope)
		if lErr == nil && rErr == nil {
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			continue
		}
		residualConjs = append(residualConjs, c)
	}
	// Left-join locals (from ON) must stay in the join; inner-join
	// locals were already pushed into the right scan by buildRightForJoin.
	if jt == sql.LeftJoin {
		residualConjs = append(residualConjs, s.local...)
	}
	residual, err := p.resolveExprList(residualConjs, combined)
	if err != nil {
		return nil, err
	}
	if len(leftKeys) > 0 {
		return &HashJoin{Left: cur, Right: rightNode,
			LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual, Type: jt}, nil
	}
	return &NLJoin{Left: cur, Right: rightNode, Cond: residual, Type: jt}, nil
}

// buildRightForJoin plans the inner side of a hash/NL join. For inner
// joins local predicates push into the scan; for left joins they remain
// in the join residual (ON semantics).
func (p *Planner) buildRightForJoin(s *source, jt sql.JoinType) (Node, error) {
	if jt == sql.LeftJoin {
		saved := s.local
		s.local = nil
		n, err := p.buildSource(s)
		s.local = saved
		return n, err
	}
	return p.buildSource(s)
}

// planJoinTree plans an explicit JOIN ... ON tree in syntax order. The
// ext conjuncts come from the enclosing WHERE clause; those that only
// reference one subtree push down into it (inner sides only — pushing
// below the NULL-extending side of a LEFT JOIN would change results).
func (p *Planner) planJoinTree(jt *sql.JoinTable, ext []sql.Expr) (Node, error) {
	var extLeft, extRight, rest []sql.Expr
	for _, c := range ext {
		switch {
		case p.refsWithin(c, jt.Left):
			extLeft = append(extLeft, c)
		case p.refsWithin(c, jt.Right) && jt.Type == sql.InnerJoin:
			extRight = append(extRight, c)
		default:
			rest = append(rest, c)
		}
	}
	left, err := p.planRefWithLocals(jt.Left, extLeft)
	if err != nil {
		return nil, err
	}
	rightSrc, err := p.makeSource(jt.Right)
	if err != nil {
		return nil, err
	}
	rightSrc.local = append(rightSrc.local, extRight...)
	var conds []sql.Expr
	if jt.On != nil {
		splitConjuncts(jt.On, &conds)
	}
	node, err := p.joinTo(left, rightSrc, conds, jt.Type)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		sc := &scope{cols: node.Schema()}
		cond, err := p.resolveExprList(rest, sc)
		if err != nil {
			return nil, err
		}
		node = &Filter{Child: node, Cond: cond}
	}
	return node, nil
}

// planRefWithLocals plans a table reference with pushed-down conjuncts.
func (p *Planner) planRefWithLocals(tr sql.TableRef, locals []sql.Expr) (Node, error) {
	if jt, ok := tr.(*sql.JoinTable); ok {
		return p.planJoinTree(jt, locals)
	}
	s, err := p.makeSource(tr)
	if err != nil {
		return nil, err
	}
	s.local = append(s.local, locals...)
	return p.buildSource(s)
}

// refsWithin reports whether every column reference of the conjunct can
// be supplied by the given table reference.
func (p *Planner) refsWithin(conj sql.Expr, tr sql.TableRef) bool {
	var refs []*sql.ColumnRef
	collectColumnRefs(conj, &refs)
	if len(refs) == 0 {
		return false
	}
	aliases := map[string]bool{}
	for _, a := range refAliases(tr) {
		aliases[strings.ToLower(a)] = true
	}
	for _, r := range refs {
		if r.Table != "" {
			if !aliases[strings.ToLower(r.Table)] {
				return false
			}
			continue
		}
		if !refProvides(p, tr, r.Name) {
			return false
		}
	}
	return true
}
