package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/types"
)

// ColInfo describes one output column of a plan node.
type ColInfo struct {
	Qual string // table alias (empty for computed columns)
	Name string
	Type types.ColumnType
	// Hidden marks a physical column slot name resolution must skip: a
	// dropped column whose slot survives so physical ordinals (and older
	// schema versions) stay valid. Hidden columns never match references
	// or star expansion, but keep their position in scan schemas.
	Hidden bool
}

// Node is a physical plan operator.
type Node interface {
	Schema() []ColInfo
	Children() []Node
	// Label returns the operator name used by EXPLAIN, loosely matching
	// the DB2 operator names shown in the paper's Figure 8.
	Label() string
	// Detail returns a one-line operator annotation for EXPLAIN.
	Detail() string
}

// AccessPath describes an index access: an equality prefix and an
// optional range on the following index column. Values are scalars so
// parameters stay late-bound.
type AccessPath struct {
	Index    *catalog.Index
	EqPrefix []Scalar
	// Optional range bound on the column after the equality prefix.
	Lo, Hi       Scalar
	LoInc, HiInc bool

	// AST forms kept during planning, resolved into the scalar fields
	// once the evaluation scope (constants vs outer row) is known.
	eqASTs       []sql.Expr
	loAST, hiAST sql.Expr
}

func (a *AccessPath) String() string {
	if a == nil || a.Index == nil {
		return "full scan"
	}
	parts := make([]string, 0, 4)
	for i, e := range a.EqPrefix {
		parts = append(parts, fmt.Sprintf("col%d=%s", a.Index.Cols[i], e))
	}
	if a.Lo != nil {
		op := ">"
		if a.LoInc {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("col%d%s%s", a.Index.Cols[len(a.EqPrefix)], op, a.Lo))
	}
	if a.Hi != nil {
		op := "<"
		if a.HiInc {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("col%d%s%s", a.Index.Cols[len(a.EqPrefix)], op, a.Hi))
	}
	return a.Index.Name + "(" + strings.Join(parts, ",") + ")"
}

// tableSchema builds the ColInfo list for a base table under an alias,
// from the newest schema. Dropped slots stay in place (ordinals are
// physical) but are Hidden from resolution.
func tableSchema(t *catalog.Table, alias string) []ColInfo {
	return colInfos(t.Columns, t.Name, alias)
}

func colInfos(cols []catalog.Column, tableName, alias string) []ColInfo {
	if alias == "" {
		alias = tableName
	}
	out := make([]ColInfo, len(cols))
	for i, c := range cols {
		out[i] = ColInfo{Qual: alias, Name: c.Name, Type: c.Type, Hidden: c.Dropped}
	}
	return out
}

// SeqScan reads every live row of a table and applies Filter.
type SeqScan struct {
	Table  *catalog.Table
	Alias  string
	Filter Scalar // may be nil
	// Cols is the scan's output schema, fixed at plan time so an as-of
	// plan keeps its snapshot's column prefix even if the live schema
	// grows afterwards; nil derives from the table's newest schema.
	Cols []ColInfo
	// Needed lists the table column ordinals the query actually reads
	// (projections, filters, join keys), sorted ascending; nil means all.
	// Set by PruneColumns and immutable afterwards — plan clones share it.
	Needed []int
}

// Schema implements Node.
func (s *SeqScan) Schema() []ColInfo {
	if s.Cols != nil {
		return s.Cols
	}
	return tableSchema(s.Table, s.Alias)
}

// Children implements Node.
func (s *SeqScan) Children() []Node { return nil }

// Label implements Node.
func (s *SeqScan) Label() string { return "TBSCAN" }

// Detail implements Node.
func (s *SeqScan) Detail() string {
	d := s.Table.Name
	if s.Filter != nil {
		d += " filter=" + s.Filter.String()
	}
	d += neededDetail(s.Table, s.Needed)
	return d
}

// neededDetail renders a pruned column set for EXPLAIN, e.g.
// " cols=[Id,Beds]"; empty when the scan decodes every column.
func neededDetail(t *catalog.Table, needed []int) string {
	if needed == nil {
		return ""
	}
	names := make([]string, len(needed))
	for i, ord := range needed {
		names[i] = t.Columns[ord].Name
	}
	return " cols=[" + strings.Join(names, ",") + "]"
}

// IndexScan reads rows via an index access path, fetching heap rows and
// applying the residual filter.
type IndexScan struct {
	Table    *catalog.Table
	Alias    string
	Path     AccessPath
	Residual Scalar // may be nil
	// Cols fixes the scan's output schema at plan time (see SeqScan.Cols).
	Cols []ColInfo
	// Needed lists the table column ordinals the query actually reads;
	// nil means all. Set by PruneColumns, immutable afterwards.
	Needed []int
}

// Schema implements Node.
func (s *IndexScan) Schema() []ColInfo {
	if s.Cols != nil {
		return s.Cols
	}
	return tableSchema(s.Table, s.Alias)
}

// Children implements Node.
func (s *IndexScan) Children() []Node { return nil }

// Label implements Node.
func (s *IndexScan) Label() string { return "IXSCAN" }

// Detail implements Node.
func (s *IndexScan) Detail() string {
	d := s.Table.Name + " via " + s.Path.String()
	if s.Residual != nil {
		d += " residual=" + s.Residual.String()
	}
	d += neededDetail(s.Table, s.Needed)
	return d
}

// Filter drops rows whose condition is not TRUE.
type Filter struct {
	Child Node
	Cond  Scalar
}

// Schema implements Node.
func (f *Filter) Schema() []ColInfo { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Label implements Node.
func (f *Filter) Label() string { return "FILTER" }

// Detail implements Node.
func (f *Filter) Detail() string { return f.Cond.String() }

// Project computes output expressions.
type Project struct {
	Child Node
	Exprs []Scalar
	Cols  []ColInfo
}

// Schema implements Node.
func (p *Project) Schema() []ColInfo { return p.Cols }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Label implements Node.
func (p *Project) Label() string { return "PROJECT" }

// Detail implements Node.
func (p *Project) Detail() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// HashJoin builds a hash table on the right input keyed by RightKeys
// and probes with LeftKeys. Residual (non-equi) conditions are applied
// to joined rows. Type LeftJoin NULL-extends unmatched left rows.
type HashJoin struct {
	Left, Right         Node
	LeftKeys, RightKeys []Scalar
	Residual            Scalar // may be nil
	Type                sql.JoinType
	leftCols, rightCols []ColInfo
}

// Schema implements Node.
func (j *HashJoin) Schema() []ColInfo {
	if j.leftCols == nil {
		j.leftCols, j.rightCols = j.Left.Schema(), j.Right.Schema()
	}
	return append(append([]ColInfo{}, j.leftCols...), j.rightCols...)
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *HashJoin) Label() string { return "HSJOIN" }

// Detail implements Node.
func (j *HashJoin) Detail() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKeys[i])
	}
	d := strings.Join(parts, " AND ")
	if j.Type == sql.LeftJoin {
		d = "LEFT " + d
	}
	return d
}

// IndexNLJoin probes the inner table's index once per outer row. The
// access-path scalars are evaluated against the *outer* row, which is
// how join keys flow in. FETCH of the inner heap row happens per match,
// mirroring the IXSCAN+FETCH pairs in the paper's Figure 8.
type IndexNLJoin struct {
	Outer    Node
	Inner    *catalog.Table
	Alias    string
	Path     AccessPath // scalars see the outer row
	Residual Scalar     // sees the combined row
	Type     sql.JoinType
	// InnerCols fixes the inner table's schema at plan time (see
	// SeqScan.Cols).
	InnerCols []ColInfo
	// NeededInner lists the inner-table column ordinals the query reads
	// from fetched rows; nil means all. Set by PruneColumns.
	NeededInner []int
}

// Schema implements Node.
func (j *IndexNLJoin) Schema() []ColInfo {
	inner := j.InnerCols
	if inner == nil {
		inner = tableSchema(j.Inner, j.Alias)
	}
	return append(append([]ColInfo{}, j.Outer.Schema()...), inner...)
}

// Children implements Node.
func (j *IndexNLJoin) Children() []Node { return []Node{j.Outer} }

// Label implements Node.
func (j *IndexNLJoin) Label() string { return "NLJOIN" }

// Detail implements Node.
func (j *IndexNLJoin) Detail() string {
	d := fmt.Sprintf("inner=%s via %s", j.Inner.Name, j.Path.String())
	if j.Type == sql.LeftJoin {
		d = "LEFT " + d
	}
	if j.Residual != nil {
		d += " residual=" + j.Residual.String()
	}
	d += neededDetail(j.Inner, j.NeededInner)
	return d
}

// NLJoin is the fallback nested-loop join with an arbitrary condition.
// The right input is materialized once.
type NLJoin struct {
	Left, Right Node
	Cond        Scalar // sees the combined row; may be nil (cross join)
	Type        sql.JoinType
}

// Schema implements Node.
func (j *NLJoin) Schema() []ColInfo {
	return append(append([]ColInfo{}, j.Left.Schema()...), j.Right.Schema()...)
}

// Children implements Node.
func (j *NLJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *NLJoin) Label() string { return "NLJOIN*" }

// Detail implements Node.
func (j *NLJoin) Detail() string {
	if j.Cond == nil {
		return "cross"
	}
	d := j.Cond.String()
	if j.Type == sql.LeftJoin {
		d = "LEFT " + d
	}
	return d
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggCountStar:
		return "COUNT(*)"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "?AGG"
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func AggFunc
	Arg  Scalar // nil for COUNT(*)
}

// HashAggregate groups by GroupBy expressions and computes Aggs.
// Output row layout: group values, then aggregate results.
type HashAggregate struct {
	Child   Node
	GroupBy []Scalar
	Aggs    []AggSpec
	Cols    []ColInfo

	// AST forms of the group keys and aggregate calls, kept so
	// post-aggregation expressions can be matched against them.
	groupASTs []sql.Expr
	aggASTs   []sql.Expr
}

// Schema implements Node.
func (a *HashAggregate) Schema() []ColInfo { return a.Cols }

// Children implements Node.
func (a *HashAggregate) Children() []Node { return []Node{a.Child} }

// Label implements Node.
func (a *HashAggregate) Label() string { return "GRPBY" }

// Detail implements Node.
func (a *HashAggregate) Detail() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, ag := range a.Aggs {
		if ag.Arg != nil {
			parts = append(parts, fmt.Sprintf("%s(%s)", ag.Func, ag.Arg))
		} else {
			parts = append(parts, ag.Func.String())
		}
	}
	return strings.Join(parts, ", ")
}

// SortKey is one ordering key over the child's output columns.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders rows by Keys.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() []ColInfo { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Sort) Label() string { return "SORT" }

// Detail implements Node.
func (s *Sort) Detail() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		d := ""
		if k.Desc {
			d = " DESC"
		}
		parts[i] = fmt.Sprintf("#%d%s", k.Col, d)
	}
	return strings.Join(parts, ", ")
}

// Limit passes through at most N rows.
type Limit struct {
	Child Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() []ColInfo { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Label implements Node.
func (l *Limit) Label() string { return "LIMIT" }

// Detail implements Node.
func (l *Limit) Detail() string { return fmt.Sprintf("%d", l.N) }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() []ColInfo { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// Label implements Node.
func (d *Distinct) Label() string { return "UNIQUE" }

// Detail implements Node.
func (d *Distinct) Detail() string { return "" }

// Materialize wraps a fully-evaluated subquery whose rows were computed
// before the outer query ran — the naive optimizer's treatment of
// derived tables (it cannot unnest them, the paper's Test 1 finding for
// MySQL). The rows are produced by running Sub to completion at Open.
type Materialize struct {
	Sub  Node
	Cols []ColInfo
}

// Schema implements Node.
func (m *Materialize) Schema() []ColInfo { return m.Cols }

// Children implements Node.
func (m *Materialize) Children() []Node { return []Node{m.Sub} }

// Label implements Node.
func (m *Materialize) Label() string { return "TEMP" }

// Detail implements Node.
func (m *Materialize) Detail() string { return "materialized derived table" }

// --- DML plans ---------------------------------------------------------------

// InsertPlan inserts literal rows into a table.
type InsertPlan struct {
	Table *catalog.Table
	// ColMap maps each value position to a table column ordinal.
	ColMap []int
	Rows   [][]Scalar
}

// Schema implements Node.
func (p *InsertPlan) Schema() []ColInfo { return nil }

// Children implements Node.
func (p *InsertPlan) Children() []Node { return nil }

// Label implements Node.
func (p *InsertPlan) Label() string { return "INSERT" }

// Detail implements Node.
func (p *InsertPlan) Detail() string {
	return fmt.Sprintf("%s (%d rows)", p.Table.Name, len(p.Rows))
}

// UpdatePlan updates rows matched by the access path + filter.
type UpdatePlan struct {
	Table  *catalog.Table
	Alias  string
	Path   *AccessPath // nil = sequential scan
	Filter Scalar      // sees the table row; may be nil
	// SetCols/SetExprs are parallel; expressions see the pre-update row.
	SetCols  []int
	SetExprs []Scalar
}

// Schema implements Node.
func (p *UpdatePlan) Schema() []ColInfo { return nil }

// Children implements Node.
func (p *UpdatePlan) Children() []Node { return nil }

// Label implements Node.
func (p *UpdatePlan) Label() string { return "UPDATE" }

// Detail implements Node.
func (p *UpdatePlan) Detail() string { return p.Table.Name }

// DeletePlan deletes rows matched by the access path + filter.
type DeletePlan struct {
	Table  *catalog.Table
	Alias  string
	Path   *AccessPath
	Filter Scalar
}

// Schema implements Node.
func (p *DeletePlan) Schema() []ColInfo { return nil }

// Children implements Node.
func (p *DeletePlan) Children() []Node { return nil }

// Label implements Node.
func (p *DeletePlan) Label() string { return "DELETE" }

// Detail implements Node.
func (p *DeletePlan) Detail() string { return p.Table.Name }

// Explain renders the plan tree with indentation, one operator per
// line, the way the paper discusses DB2 plans in §6.2.
func Explain(n Node) string {
	var sb strings.Builder
	explainRec(&sb, n, 0)
	return sb.String()
}

func explainRec(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Label())
	if d := n.Detail(); d != "" {
		sb.WriteString(" [" + d + "]")
	}
	sb.WriteString("\n")
	for _, c := range n.Children() {
		explainRec(sb, c, depth+1)
	}
}
