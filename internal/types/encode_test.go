package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeRowIntoReusesBuffer(t *testing.T) {
	rowA := []Value{NewInt(1), NewString("alpha"), NewFloat(2.5)}
	rowB := []Value{NewInt(2), NewString("beta"), NewFloat(3.5)}
	encA := EncodeRow(nil, rowA)
	encB := EncodeRow(nil, rowB)

	buf, err := DecodeRowInto(nil, encA, len(rowA))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rowA {
		if !Equal(buf[i], rowA[i]) {
			t.Fatalf("col %d: got %v want %v", i, buf[i], rowA[i])
		}
	}
	first := &buf[0]
	buf, err = DecodeRowInto(buf, encB, len(rowB))
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != first {
		t.Error("second decode did not reuse the buffer's backing array")
	}
	for i := range rowB {
		if !Equal(buf[i], rowB[i]) {
			t.Fatalf("col %d after reuse: got %v want %v", i, buf[i], rowB[i])
		}
	}
}

func TestDecodeRowIntoPadsToWidth(t *testing.T) {
	// Rows written before ALTER TABLE ADD COLUMN are shorter on disk.
	enc := EncodeRow(nil, []Value{NewInt(7)})
	row, err := DecodeRowInto(nil, enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 4 {
		t.Fatalf("width = %d, want 4", len(row))
	}
	for i := 1; i < 4; i++ {
		if !row[i].IsNull() {
			t.Errorf("pad col %d = %v, want NULL", i, row[i])
		}
	}
}

func TestDecodeRowPartial(t *testing.T) {
	row := []Value{NewInt(10), NewString("skip-me"), NewBool(true), NewFloat(1.5), NewDate(100)}
	enc := EncodeRow(nil, row)

	need := []bool{true, false, false, true, false}
	got, decoded, skipped, err := DecodeRowPartial(nil, enc, need, len(row))
	if err != nil {
		t.Fatal(err)
	}
	if decoded != 2 {
		t.Errorf("decoded = %d, want 2", decoded)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	if len(got) != len(row) {
		t.Fatalf("width = %d, want %d", len(got), len(row))
	}
	for i := range row {
		if need[i] {
			if !Equal(got[i], row[i]) {
				t.Errorf("needed col %d = %v, want %v", i, got[i], row[i])
			}
		} else if !got[i].IsNull() {
			t.Errorf("pruned col %d = %v, want NULL", i, got[i])
		}
	}
}

func TestDecodeRowPartialNilNeedDecodesAll(t *testing.T) {
	row := []Value{NewInt(1), NewString("x")}
	enc := EncodeRow(nil, row)
	got, decoded, skipped, err := DecodeRowPartial(nil, enc, nil, len(row))
	if err != nil {
		t.Fatal(err)
	}
	if decoded != 2 || skipped != 0 {
		t.Errorf("decoded/skipped = %d/%d, want 2/0", decoded, skipped)
	}
	for i := range row {
		if !Equal(got[i], row[i]) {
			t.Errorf("col %d = %v, want %v", i, got[i], row[i])
		}
	}
}

func TestDecodeRowPartialEarlyExit(t *testing.T) {
	// Only column 0 needed: the decoder must stop walking the record and
	// report every later stored value as skipped.
	row := []Value{NewInt(1), NewString("a"), NewString("b"), NewString("c")}
	enc := EncodeRow(nil, row)
	got, decoded, skipped, err := DecodeRowPartial(nil, enc, []bool{true}, len(row))
	if err != nil {
		t.Fatal(err)
	}
	if decoded != 1 || skipped != 3 {
		t.Errorf("decoded/skipped = %d/%d, want 1/3", decoded, skipped)
	}
	if !Equal(got[0], row[0]) {
		t.Errorf("col 0 = %v, want %v", got[0], row[0])
	}
	for i := 1; i < len(got); i++ {
		if !got[i].IsNull() {
			t.Errorf("col %d = %v, want NULL", i, got[i])
		}
	}
}

func TestDecodeRowPartialSkipCorrupt(t *testing.T) {
	// Truncation inside a needed column must still error even when
	// earlier columns were skipped rather than decoded.
	row := []Value{NewString("hello"), NewInt(42)}
	enc := EncodeRow(nil, row)
	need := []bool{false, true}
	for cut := 1; cut < len(enc); cut++ {
		if _, _, _, err := DecodeRowPartial(nil, enc[:cut], need, len(row)); err == nil {
			t.Errorf("truncation at %d silently accepted", cut)
		}
	}
}

// TestDecodeRowPartialProperty checks that a partial decode agrees with
// a full decode on every needed column and returns NULL elsewhere, for
// random rows and random need masks.
func TestDecodeRowPartialProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(25)
		row := make([]Value, n)
		need := make([]bool, n)
		for i := range row {
			row[i] = randomValue(r)
			need[i] = r.Intn(2) == 0
		}
		enc := EncodeRow(nil, row)
		full, err := DecodeRow(enc)
		if err != nil {
			return false
		}
		part, decoded, skipped, err := DecodeRowPartial(nil, enc, need, n)
		if err != nil || len(part) != n || decoded+skipped != n {
			return false
		}
		for i := range row {
			if need[i] {
				if part[i].Kind != full[i].Kind || !Equal(part[i], full[i]) {
					return false
				}
			} else if !part[i].IsNull() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
