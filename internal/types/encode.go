package types

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// --- Order-preserving key encoding -----------------------------------------
//
// B+tree keys are byte strings compared with bytes.Compare, so every value
// is encoded such that the byte order matches Compare's value order. Each
// encoded value starts with a kind tag whose numeric order matches the
// NULL-lowest ordering used by Compare. INT and FLOAT share one numeric
// tag so that cross-type numeric comparisons order correctly in indexes.

const (
	tagNull   byte = 0x01
	tagBool   byte = 0x02
	tagNumber byte = 0x03 // INT and FLOAT, encoded as ordered float bits
	tagString byte = 0x04
	tagDate   byte = 0x05
)

// EncodeKey appends an order-preserving encoding of v to dst.
func EncodeKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, tagNull)
	case KindBool:
		return append(dst, tagBool, byte(v.Int))
	case KindInt:
		return appendOrderedFloat(append(dst, tagNumber), float64(v.Int))
	case KindFloat:
		return appendOrderedFloat(append(dst, tagNumber), v.Float)
	case KindString:
		dst = append(dst, tagString)
		// Escape 0x00 as 0x00 0xFF so a 0x00 0x00 terminator preserves
		// prefix ordering for strings containing NUL bytes.
		for i := 0; i < len(v.Str); i++ {
			b := v.Str[i]
			if b == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, 0x00, 0x00)
	case KindDate:
		dst = append(dst, tagDate)
		return appendOrderedInt(dst, v.Int)
	}
	panic(fmt.Sprintf("types: EncodeKey of bad kind %d", v.Kind))
}

// EncodeKeyTuple encodes a composite key from vals.
func EncodeKeyTuple(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = EncodeKey(dst, v)
	}
	return dst
}

func appendOrderedInt(dst []byte, v int64) []byte {
	u := uint64(v) ^ (1 << 63) // flip sign bit: negative < positive
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(dst, buf[:]...)
}

func appendOrderedFloat(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative floats: flip all bits
	} else {
		bits |= 1 << 63 // positive floats: flip sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// --- Row serialization ------------------------------------------------------
//
// Rows are serialized into slotted pages. The format is a kind byte per
// value followed by a payload; strings carry a uvarint length prefix.
// This keeps narrow rows genuinely narrow on the page, which is what
// makes the paper's cache-locality effects (Fig 11) reproducible.

// EncodeRow appends the serialization of row to dst.
func EncodeRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindBool:
			dst = append(dst, byte(v.Int))
		case KindInt, KindDate:
			dst = binary.AppendVarint(dst, v.Int)
		case KindFloat:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.Float))
			dst = append(dst, buf[:]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
			dst = append(dst, v.Str...)
		default:
			panic(fmt.Sprintf("types: EncodeRow of bad kind %d", v.Kind))
		}
	}
	return dst
}

// DecodeRow parses a row serialized by EncodeRow.
func DecodeRow(data []byte) ([]Value, error) {
	row, _, _, err := decodeRow(nil, data, nil, 0)
	return row, err
}

// DecodeRowInto parses a row serialized by EncodeRow into dst, reusing
// dst's backing storage, and pads the result with NULLs up to width
// (rows written before the schema grew are shorter on disk). Hot paths
// pass the same buffer every call so decoding a row allocates nothing
// beyond its string payloads.
func DecodeRowInto(dst []Value, data []byte, width int) ([]Value, error) {
	row, _, _, err := decodeRow(dst, data, nil, width)
	return row, err
}

// DecodeRowPartial is DecodeRowInto restricted to the columns marked in
// need: a value whose ordinal i has need[i] == false (or i >= len(need))
// is returned as NULL without materializing its payload — string bytes
// are skipped, not copied, so the per-value allocation disappears
// entirely. A nil need decodes every column. It additionally returns
// how many stored values were decoded and how many were skipped, for
// the engine's decode-savings counters.
func DecodeRowPartial(dst []Value, data []byte, need []bool, width int) (row []Value, decoded, skipped int, err error) {
	return decodeRow(dst, data, need, width)
}

func decodeRow(dst []Value, data []byte, need []bool, width int) ([]Value, int, int, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, 0, 0, fmt.Errorf("types: corrupt row header")
	}
	data = data[sz:]
	if dst == nil {
		c := int(n)
		if width > c {
			c = width
		}
		dst = make([]Value, 0, c)
	} else {
		dst = dst[:0]
	}
	// Stop walking the record once every needed ordinal is behind us;
	// the tail becomes NULL padding below.
	last := int(n)
	if need != nil {
		last = 0
		for i, w := range need {
			if w {
				last = i + 1
			}
		}
	}
	decoded, skipped := 0, 0
	for i := uint64(0); i < n; i++ {
		if int(i) >= last {
			skipped += int(n) - int(i)
			break
		}
		if len(data) == 0 {
			return nil, decoded, skipped, fmt.Errorf("types: truncated row at value %d", i)
		}
		kind := Kind(data[0])
		data = data[1:]
		want := need == nil || (int(i) < len(need) && need[i])
		if want {
			decoded++
		} else {
			skipped++
		}
		switch kind {
		case KindNull:
			dst = append(dst, Null())
		case KindBool:
			if len(data) < 1 {
				return nil, decoded, skipped, fmt.Errorf("types: truncated bool")
			}
			if want {
				dst = append(dst, NewBool(data[0] != 0))
			} else {
				dst = append(dst, Null())
			}
			data = data[1:]
		case KindInt, KindDate:
			v, sz := binary.Varint(data)
			if sz <= 0 {
				return nil, decoded, skipped, fmt.Errorf("types: corrupt varint")
			}
			data = data[sz:]
			if want {
				dst = append(dst, Value{Kind: kind, Int: v})
			} else {
				dst = append(dst, Null())
			}
		case KindFloat:
			if len(data) < 8 {
				return nil, decoded, skipped, fmt.Errorf("types: truncated float")
			}
			if want {
				dst = append(dst, NewFloat(math.Float64frombits(binary.BigEndian.Uint64(data))))
			} else {
				dst = append(dst, Null())
			}
			data = data[8:]
		case KindString:
			l, sz := binary.Uvarint(data)
			if sz <= 0 || uint64(len(data)-sz) < l {
				return nil, decoded, skipped, fmt.Errorf("types: corrupt string")
			}
			data = data[sz:]
			if want {
				dst = append(dst, NewString(string(data[:l])))
			} else {
				dst = append(dst, Null())
			}
			data = data[l:]
		default:
			return nil, decoded, skipped, fmt.Errorf("types: bad kind byte %d", kind)
		}
	}
	for len(dst) < width {
		dst = append(dst, Null())
	}
	return dst, decoded, skipped, nil
}

// Hash returns a hash of v consistent with Equal: values that compare
// equal (including INT 2 vs FLOAT 2.0) hash identically. Used by hash
// joins and hash aggregation.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	switch v.Kind {
	case KindNull:
		h.Write([]byte{tagNull})
	case KindBool:
		h.Write([]byte{tagBool, byte(v.Int)})
	case KindInt, KindFloat:
		var buf [9]byte
		buf[0] = tagNumber
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.asFloat()))
		h.Write(buf[:])
	case KindString:
		h.Write([]byte{tagString})
		h.Write([]byte(v.Str))
	case KindDate:
		var buf [9]byte
		buf[0] = tagDate
		binary.BigEndian.PutUint64(buf[1:], uint64(v.Int))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// HashRow combines the hashes of a tuple of values.
func HashRow(vals []Value) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range vals {
		h ^= Hash(v)
		h *= 1099511628211
	}
	return h
}
