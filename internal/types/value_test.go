package types

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindFloat: "DOUBLE", KindString: "VARCHAR", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{DateFromTime(time.Date(2008, 6, 9, 0, 0, 0, 0, time.UTC)), "2008-06-09"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Null().SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral NULL = %q", got)
	}
	if got := NewInt(7).SQLLiteral(); got != "7" {
		t.Errorf("SQLLiteral int = %q", got)
	}
	if got := NewDate(0).SQLLiteral(); got != "DATE '1970-01-01'" {
		t.Errorf("SQLLiteral date = %q", got)
	}
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(10), NewDate(20), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestCompareNullLowest(t *testing.T) {
	for _, v := range []Value{NewInt(math.MinInt64), NewString(""), NewBool(false), NewFloat(math.Inf(-1))} {
		if c, _ := Compare(Null(), v); c != -1 {
			t.Errorf("NULL should sort below %v", v)
		}
		if c, _ := Compare(v, Null()); c != 1 {
			t.Errorf("%v should sort above NULL", v)
		}
	}
	if c, _ := Compare(Null(), Null()); c != 0 {
		t.Error("NULL vs NULL should compare equal for ordering")
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	if c, err := Compare(NewInt(2), NewFloat(2.0)); err != nil || c != 0 {
		t.Errorf("2 vs 2.0: %d %v", c, err)
	}
	if c, err := Compare(NewInt(2), NewFloat(2.5)); err != nil || c != -1 {
		t.Errorf("2 vs 2.5: %d %v", c, err)
	}
}

func TestCompareMixedError(t *testing.T) {
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Error("expected error comparing INT with VARCHAR")
	}
	if _, err := Compare(NewDate(1), NewBool(true)); err == nil {
		t.Error("expected error comparing DATE with BOOLEAN")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		v    Value
		to   Kind
		want Value
	}{
		{NewString("42"), KindInt, NewInt(42)},
		{NewInt(42), KindString, NewString("42")},
		{NewFloat(2.9), KindInt, NewInt(2)},
		{NewString("2.5"), KindFloat, NewFloat(2.5)},
		{NewString("2008-06-09"), KindDate, DateFromTime(time.Date(2008, 6, 9, 0, 0, 0, 0, time.UTC))},
		{NewDate(100), KindString, NewString("1970-04-11")},
		{Null(), KindInt, Null()},
		{NewInt(1), KindBool, NewBool(true)},
		{NewString("true"), KindBool, NewBool(true)},
	}
	for _, c := range cases {
		got, err := Cast(c.v, c.to)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("Cast(%v, %v) = %v, %v; want %v", c.v, c.to, got, err, c.want)
		}
	}
	if _, err := Cast(NewString("abc"), KindInt); err == nil {
		t.Error("expected error casting 'abc' to INTEGER")
	}
	if _, err := Cast(NewString("nope"), KindDate); err == nil {
		t.Error("expected error casting 'nope' to DATE")
	}
}

func TestColumnTypeString(t *testing.T) {
	if got := VarcharType(100).String(); got != "VARCHAR(100)" {
		t.Errorf("VarcharType = %q", got)
	}
	if got := IntType.String(); got != "INTEGER" {
		t.Errorf("IntType = %q", got)
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return NewBool(r.Intn(2) == 1)
	case 2:
		return NewInt(r.Int63() - r.Int63())
	case 3:
		return NewFloat((r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(20)-10)))
	case 4:
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256)) // includes NUL bytes
		}
		return NewString(string(b))
	default:
		return NewDate(int64(r.Intn(40000) - 20000))
	}
}

func TestKeyEncodingOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		cmp, err := Compare(a, b)
		if err != nil {
			return true // mixed incomparable kinds don't share index columns
		}
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		bc := bytes.Compare(ka, kb)
		if cmp == 0 {
			// Equal values of different numeric kinds may encode identically;
			// equality must never be ordered.
			return bc == 0 || a.Kind != b.Kind
		}
		return bc == cmp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingStringPrefix(t *testing.T) {
	// "ab" < "ab\x00" < "ab\x01" must hold after encoding.
	a := EncodeKey(nil, NewString("ab"))
	b := EncodeKey(nil, NewString("ab\x00"))
	c := EncodeKey(nil, NewString("ab\x01"))
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Errorf("NUL-escape ordering broken: %x %x %x", a, b, c)
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		row := make([]Value, n)
		for i := range row {
			row[i] = randomValue(r)
		}
		enc := EncodeRow(nil, row)
		dec, err := DecodeRow(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(row) {
			return false
		}
		for i := range row {
			if dec[i].Kind != row[i].Kind || !Equal(dec[i], row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	row := []Value{NewInt(1), NewString("hello")}
	enc := EncodeRow(nil, row)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRow(enc[:cut]); err == nil {
			// Some prefixes decode as shorter valid rows only if the count
			// matches; with our format the count is fixed so any truncation
			// must error.
			t.Errorf("truncation at %d silently accepted", cut)
		}
	}
	if _, err := DecodeRow([]byte{}); err == nil {
		t.Error("empty buffer should error")
	}
	if _, err := DecodeRow([]byte{1, 99}); err == nil {
		t.Error("bad kind byte should error")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	if Hash(NewInt(2)) != Hash(NewFloat(2.0)) {
		t.Error("INT 2 and FLOAT 2.0 must hash identically")
	}
	if Hash(NewString("a")) == Hash(NewString("b")) {
		t.Error("different strings should (overwhelmingly) hash differently")
	}
	a := HashRow([]Value{NewInt(1), NewString("x")})
	b := HashRow([]Value{NewInt(1), NewString("x")})
	if a != b {
		t.Error("HashRow must be deterministic")
	}
}

func TestDateRoundTrip(t *testing.T) {
	d := time.Date(2008, 6, 12, 0, 0, 0, 0, time.UTC)
	v := DateFromTime(d)
	if !v.Time().Equal(d) {
		t.Errorf("date round trip: got %v want %v", v.Time(), d)
	}
}
