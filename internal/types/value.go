// Package types defines the value model shared by the storage engine,
// the SQL layer, and the schema-mapping layer: typed scalar values,
// comparison with numeric coercion, order-preserving key encoding for
// B+tree indexes, and compact row serialization for slotted pages.
package types

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; it compares below every other value.
	KindNull Kind = iota
	// KindBool holds a boolean, stored in the Int field as 0 or 1.
	KindBool
	// KindInt holds a 64-bit signed integer.
	KindInt
	// KindFloat holds a 64-bit IEEE float.
	KindFloat
	// KindString holds an immutable UTF-8 string.
	KindString
	// KindDate holds a calendar date as days since 1970-01-01 (Int field).
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed SQL scalar. The zero Value is NULL.
type Value struct {
	Kind  Kind
	Int   int64 // INT payload; BOOL as 0/1; DATE as days since epoch
	Float float64
	Str   string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{Kind: KindBool, Int: i}
}

// NewDate returns a DATE value from days since 1970-01-01.
func NewDate(days int64) Value { return Value{Kind: KindDate, Int: days} }

// DateFromTime returns the DATE value for the calendar day of t (UTC).
func DateFromTime(t time.Time) Value {
	t = t.UTC()
	days := t.Unix() / 86400
	return NewDate(days)
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the boolean payload; only meaningful for KindBool.
func (v Value) Bool() bool { return v.Int != 0 }

// Time returns the time.Time at UTC midnight for a DATE value.
func (v Value) Time() time.Time { return time.Unix(v.Int*86400, 0).UTC() }

// String renders the value the way the SQL layer prints result cells.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.Int != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindDate:
		return v.Time().Format("2006-01-02")
	}
	return fmt.Sprintf("<bad kind %d>", v.Kind)
}

// SQLLiteral renders the value as a SQL literal suitable for embedding
// in generated statements (the query-transformation layer uses this).
func (v Value) SQLLiteral() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool, KindInt, KindFloat:
		return v.String()
	case KindString:
		return "'" + escapeSQLString(v.Str) + "'"
	case KindDate:
		return "DATE '" + v.Time().Format("2006-01-02") + "'"
	}
	return "NULL"
}

func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// numeric reports whether the kind participates in numeric coercion.
func numeric(k Kind) bool { return k == KindInt || k == KindFloat }

// asFloat coerces INT/FLOAT payloads to float64.
func (v Value) asFloat() float64 {
	if v.Kind == KindFloat {
		return v.Float
	}
	return float64(v.Int)
}

// Compare orders two values. NULL sorts below everything; values of the
// same kind compare natively; INT and FLOAT cross-compare numerically.
// Comparing other mixed kinds returns an error (the planner should have
// rejected or cast them).
func Compare(a, b Value) (int, error) {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0, nil
		case a.Kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.Kind == b.Kind {
		switch a.Kind {
		case KindBool, KindInt, KindDate:
			return cmpInt64(a.Int, b.Int), nil
		case KindFloat:
			return cmpFloat64(a.Float, b.Float), nil
		case KindString:
			switch {
			case a.Str < b.Str:
				return -1, nil
			case a.Str > b.Str:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if numeric(a.Kind) && numeric(b.Kind) {
		return cmpFloat64(a.asFloat(), b.asFloat()), nil
	}
	return 0, fmt.Errorf("types: cannot compare %s with %s", a.Kind, b.Kind)
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare semantics
// (NULL equals NULL here, which is what GROUP BY and hash joins on
// reconstructed rows need; three-valued logic lives in the evaluator).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Cast converts v to the target kind, mirroring SQL CAST. Casting NULL
// yields NULL of any kind.
func Cast(v Value, to Kind) (Value, error) {
	if v.Kind == KindNull || v.Kind == to {
		if v.Kind == KindNull {
			return Null(), nil
		}
		return v, nil
	}
	switch to {
	case KindInt:
		switch v.Kind {
		case KindFloat:
			return NewInt(int64(v.Float)), nil
		case KindBool, KindDate:
			return NewInt(v.Int), nil
		case KindString:
			n, err := strconv.ParseInt(v.Str, 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("types: cannot cast %q to INTEGER", v.Str)
			}
			return NewInt(n), nil
		}
	case KindFloat:
		switch v.Kind {
		case KindInt, KindBool, KindDate:
			return NewFloat(float64(v.Int)), nil
		case KindString:
			f, err := strconv.ParseFloat(v.Str, 64)
			if err != nil {
				return Null(), fmt.Errorf("types: cannot cast %q to DOUBLE", v.Str)
			}
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.String()), nil
	case KindDate:
		switch v.Kind {
		case KindInt:
			return NewDate(v.Int), nil
		case KindString:
			t, err := time.Parse("2006-01-02", v.Str)
			if err != nil {
				return Null(), fmt.Errorf("types: cannot cast %q to DATE", v.Str)
			}
			return DateFromTime(t), nil
		}
	case KindBool:
		switch v.Kind {
		case KindInt:
			return NewBool(v.Int != 0), nil
		case KindString:
			switch v.Str {
			case "true", "TRUE", "t", "1":
				return NewBool(true), nil
			case "false", "FALSE", "f", "0":
				return NewBool(false), nil
			}
			return Null(), fmt.Errorf("types: cannot cast %q to BOOLEAN", v.Str)
		}
	}
	return Null(), fmt.Errorf("types: unsupported cast %s -> %s", v.Kind, to)
}

// ColumnType describes a column's declared type. Width carries the
// VARCHAR(n) length bound (0 means unbounded); it is advisory — values
// are not truncated — but the schema-mapping layer uses it to match
// logical columns onto generic chunk columns.
type ColumnType struct {
	Kind  Kind
	Width int
}

// String renders the type the way CREATE TABLE prints it.
func (t ColumnType) String() string {
	if t.Kind == KindString && t.Width > 0 {
		return fmt.Sprintf("VARCHAR(%d)", t.Width)
	}
	return t.Kind.String()
}

// IntType, FloatType, StringType, DateType, BoolType are the common
// column types used throughout the testbed and the example schemas.
var (
	IntType    = ColumnType{Kind: KindInt}
	FloatType  = ColumnType{Kind: KindFloat}
	DateType   = ColumnType{Kind: KindDate}
	BoolType   = ColumnType{Kind: KindBool}
	StringType = ColumnType{Kind: KindString, Width: 100}
)

// VarcharType returns a VARCHAR(n) column type.
func VarcharType(n int) ColumnType { return ColumnType{Kind: KindString, Width: n} }
